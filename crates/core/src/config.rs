//! Detection configuration.

use serde::{Deserialize, Serialize};

use rolediet_cluster::hnsw::HnswParams;
use rolediet_cluster::minhash::MinHashLshParams;
use rolediet_mining::MiningConfig;

/// Which role-grouping strategy handles the expensive types T4/T5
/// (Section III-C of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Strategy {
    /// The paper's co-occurrence algorithm: exact and deterministic —
    /// "consistently identifies all clusters without fail" — and the
    /// fastest by orders of magnitude.
    #[default]
    Custom,
    /// Exact DBSCAN clustering with Hamming distance (`min_pts = 2`,
    /// `eps = 0 + ε` for T4, `eps = t + ε` for T5). Exact but O(n²).
    ExactDbscan,
    /// Approximate HNSW nearest-neighbour search (Manhattan ≡ Hamming on
    /// binary rows). May miss pairs; `probe_k` neighbours are retrieved
    /// per role and filtered by distance.
    ApproxHnsw {
        /// Index build/search parameters.
        params: HnswParams,
        /// Neighbours retrieved per role before distance filtering.
        probe_k: usize,
    },
    /// MinHash LSH candidate generation followed by exact verification —
    /// a second approximate baseline (ablation `abl-recall`).
    MinHashLsh {
        /// Sketching/banding parameters.
        params: MinHashLshParams,
    },
}

impl Strategy {
    /// Default HNSW strategy configuration.
    pub fn hnsw_default() -> Strategy {
        Strategy::ApproxHnsw {
            params: HnswParams::default(),
            probe_k: 16,
        }
    }

    /// Default MinHash LSH strategy configuration.
    pub fn minhash_default() -> Strategy {
        Strategy::MinHashLsh {
            params: MinHashLshParams::default(),
        }
    }

    /// Short stable name for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Custom => "custom",
            Strategy::ExactDbscan => "exact-dbscan",
            Strategy::ApproxHnsw { .. } => "approx-hnsw",
            Strategy::MinHashLsh { .. } => "minhash-lsh",
        }
    }

    /// Whether the strategy is guaranteed to find every group/pair.
    pub fn is_exact(&self) -> bool {
        matches!(self, Strategy::Custom | Strategy::ExactDbscan)
    }
}

/// Configuration of the T5 (similar roles) detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Maximum number of differing users/permissions for two roles to be
    /// reported as similar. The paper's real-data experiment uses `1`
    /// ("share all but one user or permission").
    pub threshold: usize,
    /// Also report role pairs with *disjoint* sets whose combined size is
    /// within the threshold (e.g. an empty role vs. a single-user role at
    /// `t = 1`).
    ///
    /// The paper's co-occurrence formulation only sees pairs sharing at
    /// least one user (`gⁱʲ ≥ 1`), so its reported counts exclude
    /// disjoint pairs; `false` reproduces that behaviour. Setting `true`
    /// adds a supplementary pass over low-norm rows — beware that on data
    /// with many empty roles this can produce quadratically many pairs.
    pub include_disjoint: bool,
    /// Cap on reported similar pairs per side (`usize::MAX` = unlimited).
    /// Applied after sorting by distance, so the closest pairs survive.
    pub max_pairs: usize,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            threshold: 1,
            include_disjoint: false,
            max_pairs: usize::MAX,
        }
    }
}

/// Thread configuration for the parallelizable stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Parallelism {
    /// Single-threaded (default; matches the paper's setup).
    #[default]
    Sequential,
    /// Use up to this many worker threads (clamped to at least 1).
    Threads(usize),
}

impl Parallelism {
    /// Number of worker threads this setting resolves to.
    pub fn threads(&self) -> usize {
        match *self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// Default HNSW build generation size ([`DetectionConfig::hnsw_batch`]).
pub const DEFAULT_HNSW_BATCH: usize = 64;

fn default_hnsw_batch() -> usize {
    DEFAULT_HNSW_BATCH
}

/// Full configuration of a detection run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionConfig {
    /// Strategy for the expensive types (T4/T5).
    pub strategy: Strategy,
    /// Similar-roles (T5) settings.
    pub similarity: SimilarityConfig,
    /// Skip the T5 detector entirely (it dominates runtime on some
    /// datasets).
    pub skip_similarity: bool,
    /// Report roles with *empty* rows as duplicate groups too.
    ///
    /// All userless roles trivially share "the same users" (none), but
    /// they are already reported as T2 findings, and the paper's real-org
    /// counts (8,000 same-user roles vs. 12,000 userless roles) show T4
    /// excludes them. `false` (default) reproduces that semantics.
    pub include_empty_duplicates: bool,
    /// Thread configuration.
    pub parallelism: Parallelism,
    /// Memory budget (in bytes) for the exact-DBSCAN distance plane.
    ///
    /// `0` (default) means unbounded: the whole packed matrix stays
    /// resident, exactly as before the knob existed. A positive budget
    /// routes the O(n²) T4/T5 neighbourhood precomputes through the
    /// sharded engine ([`rolediet_matrix::PackedShards`]): the rows are
    /// split into norm-contiguous shard blocks sized so that the two
    /// blocks active in any tile pass fit the budget, and results are
    /// bit-identical to the unbounded engine at every budget and thread
    /// count. Only the exact-DBSCAN strategy consults this knob.
    #[serde(default)]
    pub memory_budget_bytes: usize,
    /// Generation size for the batch-parallel HNSW build.
    ///
    /// Each generation of this many pending nodes searches the frozen
    /// graph concurrently before a sequential commit pass; the built
    /// index is bit-identical at every value, so this is purely a
    /// performance knob. `0` selects the legacy one-node-at-a-time
    /// sequential insert (the ablation baseline/oracle). Only the
    /// ApproxHnsw strategy consults this knob.
    #[serde(default = "default_hnsw_batch")]
    pub hnsw_batch: usize,
    /// Role-mining (regeneration) settings, used by the `mine` CLI
    /// command and the `repro mining` experiment that contrast
    /// regenerating a role set from scratch against the diet's
    /// refinement. Ignored by the detection pipeline itself.
    #[serde(default)]
    pub mining: MiningConfig,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            strategy: Strategy::default(),
            similarity: SimilarityConfig::default(),
            skip_similarity: false,
            include_empty_duplicates: false,
            parallelism: Parallelism::default(),
            memory_budget_bytes: 0,
            hnsw_batch: DEFAULT_HNSW_BATCH,
            mining: MiningConfig::default(),
        }
    }
}

impl DetectionConfig {
    /// Configuration using the given strategy, defaults elsewhere.
    pub fn with_strategy(strategy: Strategy) -> Self {
        DetectionConfig {
            strategy,
            ..DetectionConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = DetectionConfig::default();
        assert_eq!(cfg.strategy, Strategy::Custom);
        assert_eq!(cfg.similarity.threshold, 1);
        assert!(!cfg.similarity.include_disjoint);
        assert!(!cfg.skip_similarity);
        assert_eq!(cfg.parallelism.threads(), 1);
        assert_eq!(cfg.hnsw_batch, DEFAULT_HNSW_BATCH);
    }

    #[test]
    fn mining_defaults_when_absent_from_json() {
        // Configs serialized before the mining knob existed must
        // deserialize to the default mining configuration.
        let json = serde_json::to_string(&DetectionConfig::default()).unwrap();
        let mining = serde_json::to_string(&rolediet_mining::MiningConfig::default()).unwrap();
        let stripped = json.replace(&format!(",\"mining\":{mining}"), "");
        assert_ne!(json, stripped, "test must actually strip the field");
        let back: DetectionConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.mining, rolediet_mining::MiningConfig::default());
    }

    #[test]
    fn hnsw_batch_defaults_when_absent_from_json() {
        // Configs serialized before the knob existed must deserialize to
        // the batched default, not the legacy sequential insert.
        let json = serde_json::to_string(&DetectionConfig::default()).unwrap();
        let stripped = json.replace(&format!(",\"hnsw_batch\":{DEFAULT_HNSW_BATCH}"), "");
        assert_ne!(json, stripped, "test must actually strip the field");
        let back: DetectionConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.hnsw_batch, DEFAULT_HNSW_BATCH);
    }

    #[test]
    fn strategy_names_and_exactness() {
        assert_eq!(Strategy::Custom.name(), "custom");
        assert_eq!(Strategy::ExactDbscan.name(), "exact-dbscan");
        assert_eq!(Strategy::hnsw_default().name(), "approx-hnsw");
        assert_eq!(Strategy::minhash_default().name(), "minhash-lsh");
        assert!(Strategy::Custom.is_exact());
        assert!(Strategy::ExactDbscan.is_exact());
        assert!(!Strategy::hnsw_default().is_exact());
        assert!(!Strategy::minhash_default().is_exact());
    }

    #[test]
    fn parallelism_clamps() {
        assert_eq!(Parallelism::Threads(0).threads(), 1);
        assert_eq!(Parallelism::Threads(8).threads(), 8);
        assert_eq!(Parallelism::Sequential.threads(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = DetectionConfig::with_strategy(Strategy::hnsw_default());
        let json = serde_json::to_string(&cfg).unwrap();
        let back: DetectionConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
