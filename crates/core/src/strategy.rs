//! Strategy dispatch for the expensive detectors (T4/T5).
//!
//! All three methods of Section III-C (plus the MinHash ablation) expose
//! the same two operations: find groups of *identical* rows and find pairs
//! of *similar* rows. The pipeline calls [`find_same_groups`] and
//! [`find_similar_pairs`] with the configured [`Strategy`]; benchmarks
//! call them directly to time each method on identical inputs.
//!
//! Exactness:
//!
//! * `Custom` and `ExactDbscan` return exactly the true groups/pairs
//!   (asserted against brute force in tests);
//! * `ApproxHnsw` and `MinHashLsh` may miss some (recall < 1) but never
//!   fabricate: every candidate is verified against the matrix before
//!   being reported.

use rolediet_cluster::dbscan::{Dbscan, DbscanParams};
use rolediet_cluster::hnsw::{Hnsw, HnswParams};
use rolediet_cluster::metric::{PackedPointSet, PointSet};
use rolediet_cluster::minhash::{MinHashLsh, MinHashLshParams};
use rolediet_cluster::neighbors::{all_range_queries_packed, all_range_queries_sharded};
use rolediet_cluster::UnionFind;
use rolediet_matrix::{CsrMatrix, PackedRows, RowMatrix};

use crate::config::{Parallelism, SimilarityConfig, Strategy, DEFAULT_HNSW_BATCH};
use crate::cooccur;
use crate::report::SimilarPair;

/// T4 — groups of roles with identical rows, using `strategy`.
///
/// Output is normalized: groups sorted by first member, members
/// ascending, only groups of two or more. Groups of *empty* rows (roles
/// with no users/permissions at all — already T2 findings) are excluded;
/// use [`find_same_groups_with_empty`] to keep them.
pub fn find_same_groups(
    matrix: &CsrMatrix,
    strategy: &Strategy,
    parallelism: Parallelism,
) -> Vec<Vec<usize>> {
    let mut groups = find_same_groups_with_empty(matrix, strategy, parallelism);
    groups.retain(|g| matrix.row_norm(g[0]) > 0);
    groups
}

/// [`find_same_groups`] without the empty-row filter: a group of roles
/// whose rows are all empty is reported like any other duplicate group.
pub fn find_same_groups_with_empty(
    matrix: &CsrMatrix,
    strategy: &Strategy,
    parallelism: Parallelism,
) -> Vec<Vec<usize>> {
    let threads = parallelism.threads();
    match strategy {
        Strategy::Custom => cooccur::same_groups_with(matrix, threads),
        Strategy::ExactDbscan => {
            let engine = DbscanEngine::build(matrix, threads);
            let neighborhoods = engine.duplicate_neighborhoods(threads);
            dbscan_same_groups_cached(&engine, &neighborhoods, true, threads)
        }
        Strategy::ApproxHnsw { params, probe_k } => {
            let engine = HnswEngine::build(matrix, *params, DEFAULT_HNSW_BATCH, threads);
            hnsw_same_groups(&engine, *probe_k, threads)
        }
        Strategy::MinHashLsh { params } => {
            let pairs = minhash_pairs(matrix, *params, 0, threads);
            groups_from_pairs_with(matrix.n_rows(), &pairs, threads)
        }
    }
}

/// T5 — role pairs within Hamming distance `cfg.threshold` (excluding
/// identical pairs), using `strategy`.
///
/// Every strategy verifies distances against the matrix, so reported
/// pairs are always true pairs; approximate strategies may return fewer.
pub fn find_similar_pairs(
    matrix: &CsrMatrix,
    transpose: &CsrMatrix,
    strategy: &Strategy,
    cfg: &SimilarityConfig,
    parallelism: Parallelism,
) -> Vec<SimilarPair> {
    match strategy {
        Strategy::Custom => {
            cooccur::similar_pairs_parallel(matrix, transpose, cfg, parallelism.threads())
        }
        Strategy::ExactDbscan => dbscan_similar_pairs(matrix, cfg, parallelism.threads()),
        Strategy::ApproxHnsw { params, probe_k } => {
            let threads = parallelism.threads();
            let engine = HnswEngine::build(matrix, *params, DEFAULT_HNSW_BATCH, threads);
            hnsw_similar_pairs(&engine, *probe_k, cfg, threads)
        }
        Strategy::MinHashLsh { params } => {
            let mut pairs = minhash_pairs(matrix, *params, cfg.threshold, parallelism.threads());
            pairs.retain(|p| p.distance >= 1);
            finalize(pairs, cfg.max_pairs)
        }
    }
}

/// The exact-DBSCAN strategy's packed bounded-distance engine: role rows
/// packed once ([`PackedRows`]), then shared by every O(n²) neighbourhood
/// precompute and the within-cluster pair verification.
///
/// The pipeline builds one engine per matrix side and times the build and
/// the neighbourhood precomputes into `Report::timings.distance_precompute`
/// — apart from the grouping they feed — so benches can compare the
/// distance plane against the scalar [`PointSet`] oracle directly.
///
/// Under a positive [`DetectionConfig::memory_budget_bytes`] the engine
/// keeps only the source matrix resident and streams each neighbourhood
/// precompute through the sharded driver
/// ([`PackedShards`](rolediet_matrix::PackedShards)), whose shard blocks
/// are sized to the budget — with output bit-identical to the resident
/// engine at every budget and thread count.
///
/// [`PointSet`]: rolediet_cluster::metric::PointSet
/// [`DetectionConfig::memory_budget_bytes`]: crate::DetectionConfig
pub struct DbscanEngine {
    backend: EngineBackend,
}

/// How the engine holds the distance plane.
enum EngineBackend {
    /// The whole packed matrix resident (the unbounded default).
    Resident(PackedRows),
    /// Norm-contiguous shard blocks built two at a time under a byte
    /// budget; the source matrix stays in its compact CSR form.
    Sharded {
        matrix: CsrMatrix,
        norms: Vec<u32>,
        budget: usize,
        shards: usize,
    },
}

impl DbscanEngine {
    /// Packs `matrix` for bounded-distance queries (representation chosen
    /// by density; see [`PackedRows::from_matrix`]).
    pub fn build(matrix: &CsrMatrix, threads: usize) -> Self {
        DbscanEngine {
            backend: EngineBackend::Resident(PackedRows::from_matrix(matrix, threads.max(1))),
        }
    }

    /// [`DbscanEngine::build`] under a memory budget: `0` is unbounded
    /// (the resident engine, byte-for-byte); a positive budget keeps the
    /// CSR matrix and streams packed shard blocks per query instead.
    pub fn build_with_budget(
        matrix: &CsrMatrix,
        memory_budget_bytes: usize,
        threads: usize,
    ) -> Self {
        if memory_budget_bytes == 0 {
            return DbscanEngine::build(matrix, threads);
        }
        let threads = threads.max(1);
        let norms: Vec<u32> =
            rolediet_matrix::parallel::par_map_rows(matrix.n_rows(), threads, |range| {
                range.map(|i| matrix.row_norm(i) as u32).collect()
            });
        let shards = rolediet_matrix::ShardPlan::new(
            &norms,
            matrix.n_cols(),
            matrix.nnz(),
            memory_budget_bytes,
        )
        .n_shards();
        DbscanEngine {
            backend: EngineBackend::Sharded {
                matrix: matrix.clone(),
                norms,
                budget: memory_budget_bytes,
                shards,
            },
        }
    }

    /// Number of shard blocks the distance plane streams over (`1` for
    /// the resident engine).
    pub fn shard_count(&self) -> usize {
        match &self.backend {
            EngineBackend::Resident(_) => 1,
            EngineBackend::Sharded { shards, .. } => *shards,
        }
    }

    /// Norm (number of set bits) of row `i`.
    pub fn row_norm(&self, i: usize) -> usize {
        match &self.backend {
            EngineBackend::Resident(rows) => rows.row_norm(i),
            EngineBackend::Sharded { norms, .. } => norms[i] as usize,
        }
    }

    /// Hamming distance between rows `i` and `j` if it is `<= bound`,
    /// `None` otherwise (same contract as
    /// [`PackedRows::bounded_hamming`]).
    pub fn bounded_hamming(&self, i: usize, j: usize, bound: usize) -> Option<usize> {
        match &self.backend {
            EngineBackend::Resident(rows) => rows.bounded_hamming(i, j, bound),
            EngineBackend::Sharded { matrix, norms, .. } => {
                if (norms[i].abs_diff(norms[j])) as usize > bound {
                    return None;
                }
                let d = matrix.row_hamming(i, j);
                (d <= bound).then_some(d)
            }
        }
    }

    /// Neighbour lists for the T4 duplicate query (`eps` from
    /// [`DbscanParams::exact_duplicates`]).
    pub fn duplicate_neighborhoods(&self, threads: usize) -> Vec<Vec<usize>> {
        self.neighborhoods(DbscanParams::exact_duplicates().eps, threads)
    }

    /// Neighbour lists for the T5 similarity query (`eps` from
    /// [`DbscanParams::similar`]).
    pub fn similar_neighborhoods(&self, threshold: usize, threads: usize) -> Vec<Vec<usize>> {
        self.neighborhoods(DbscanParams::similar(threshold).eps, threads)
    }

    fn neighborhoods(&self, eps: f64, threads: usize) -> Vec<Vec<usize>> {
        match &self.backend {
            EngineBackend::Resident(rows) => all_range_queries_packed(rows, eps, threads.max(1)),
            EngineBackend::Sharded { matrix, budget, .. } => {
                all_range_queries_sharded(matrix, eps, *budget, threads.max(1))
            }
        }
    }
}

/// T4 groups from precomputed duplicate neighbourhoods (the grouping half
/// of the exact-DBSCAN strategy, with the distance plane already paid for
/// by [`DbscanEngine::duplicate_neighborhoods`]).
pub fn dbscan_same_groups_cached(
    engine: &DbscanEngine,
    neighborhoods: &[Vec<usize>],
    include_empty: bool,
    threads: usize,
) -> Vec<Vec<usize>> {
    let labels =
        Dbscan::new(DbscanParams::exact_duplicates()).group_cached_with(neighborhoods, threads);
    let mut groups = normalize_groups(labels.clusters());
    if !include_empty {
        groups.retain(|g| engine.row_norm(g[0]) > 0);
    }
    groups
}

/// T5 pairs from precomputed similarity neighbourhoods: cluster with
/// `eps = t`, then enumerate and verify the pairs inside each cluster.
///
/// DBSCAN with `min_pts = 2` never misses a true pair (both endpoints of
/// a `d ≤ t` pair are core points of the same cluster), but density
/// chaining can pull farther points into the cluster, so the
/// within-cluster pair enumeration re-checks every distance — through the
/// engine's [`PackedRows::bounded_hamming`] kernel, which prunes the
/// chained-in far pairs by norm band before touching row words.
pub fn dbscan_similar_pairs_cached(
    engine: &DbscanEngine,
    neighborhoods: &[Vec<usize>],
    cfg: &SimilarityConfig,
    threads: usize,
) -> Vec<SimilarPair> {
    let labels =
        Dbscan::new(DbscanParams::similar(cfg.threshold)).group_cached_with(neighborhoods, threads);
    let mut pairs = Vec::new();
    for cluster in labels.clusters() {
        for (x, &i) in cluster.iter().enumerate() {
            for &j in &cluster[x + 1..] {
                if let Some(d) = engine.bounded_hamming(i, j, cfg.threshold) {
                    if d >= 1 {
                        pairs.push(SimilarPair::new(i, j, d));
                    }
                }
            }
        }
    }
    finalize(pairs, cfg.max_pairs)
}

/// DBSCAN-based T5 over a freshly built engine (the strategy-dispatch
/// entry; the pipeline calls the `_cached` halves instead so the engine
/// and neighbourhoods are timed as `distance_precompute`).
fn dbscan_similar_pairs(
    matrix: &CsrMatrix,
    cfg: &SimilarityConfig,
    threads: usize,
) -> Vec<SimilarPair> {
    let engine = DbscanEngine::build(matrix, threads);
    let neighborhoods = engine.similar_neighborhoods(cfg.threshold, threads);
    dbscan_similar_pairs_cached(&engine, &neighborhoods, cfg, threads)
}

/// The ApproxHnsw strategy's engine: role rows packed once
/// ([`PackedPointSet`], sharing the exact plane's distance kernels), then
/// one HNSW index built over them with the batch-parallel two-phase
/// algorithm ([`Hnsw::build_batched`]).
///
/// The pipeline builds one engine per matrix side and times it into
/// `Report::timings.hnsw_build` — apart from the probes it feeds
/// ([`hnsw_same_groups`], [`hnsw_similar_pairs`]) — so benches can compare
/// construction against the sequential-insert oracle directly. The built
/// index is bit-identical at every `batch` and `threads` value (`batch =
/// 0` *is* the sequential oracle), so results never depend on either knob.
pub struct HnswEngine {
    points: PackedPointSet,
    index: Hnsw,
}

impl HnswEngine {
    /// Packs `matrix` and builds the index with generations of `batch`
    /// nodes on `threads` workers.
    pub fn build(matrix: &CsrMatrix, params: HnswParams, batch: usize, threads: usize) -> Self {
        let threads = threads.max(1);
        let points = PackedPointSet::from_matrix(matrix, threads);
        let index = Hnsw::build_batched(&points, params, batch, threads);
        HnswEngine { points, index }
    }

    /// The packed rows the index measures distances against.
    pub fn points(&self) -> &PackedPointSet {
        &self.points
    }

    /// The built index.
    pub fn index(&self) -> &Hnsw {
        &self.index
    }

    /// Norm (number of set bits) of row `i`.
    pub fn row_norm(&self, i: usize) -> usize {
        self.points.row_norm(i)
    }
}

/// T4 groups over a built [`HnswEngine`]: probe every role for its
/// `probe_k` nearest neighbours, keep verified 0-distance pairs, and
/// union them into groups (empty-row groups included; the pipeline
/// filters those like every other strategy).
pub fn hnsw_same_groups(engine: &HnswEngine, probe_k: usize, threads: usize) -> Vec<Vec<usize>> {
    let pairs = hnsw_engine_pairs(engine, probe_k, 0, threads);
    groups_from_pairs_with(engine.points.len(), &pairs, threads)
}

/// T5 pairs over a built [`HnswEngine`]: probed like
/// [`hnsw_same_groups`] but keeping verified pairs with `1 ≤ distance ≤
/// cfg.threshold`.
pub fn hnsw_similar_pairs(
    engine: &HnswEngine,
    probe_k: usize,
    cfg: &SimilarityConfig,
    threads: usize,
) -> Vec<SimilarPair> {
    let mut pairs = hnsw_engine_pairs(engine, probe_k, cfg.threshold, threads);
    pairs.retain(|p| p.distance >= 1);
    finalize(pairs, cfg.max_pairs)
}

/// HNSW probe: query every role for its `probe_k` nearest neighbours and
/// keep verified pairs with distance ≤ `threshold`. The read-only probe
/// fans out over `threads` workers.
fn hnsw_engine_pairs(
    engine: &HnswEngine,
    probe_k: usize,
    threshold: usize,
    threads: usize,
) -> Vec<SimilarPair> {
    let ef_search = engine.index.params().ef_search;
    let mut pairs = Vec::new();
    for (q, hits) in engine
        .index
        .knn_batch(&engine.points, probe_k, ef_search, threads)
        .into_iter()
        .enumerate()
    {
        for (j, d) in hits {
            if j != q && d <= threshold as f64 {
                pairs.push(SimilarPair::new(q, j, d as usize));
            }
        }
    }
    pairs.sort_unstable_by_key(|p| (p.a, p.b));
    pairs.dedup();
    pairs
}

/// MinHash LSH probe: band-collision candidates, verified by true
/// distance. Sketching and banding both run on the shared parallel
/// substrate (`threads` workers, deterministic join order).
fn minhash_pairs(
    matrix: &CsrMatrix,
    params: MinHashLshParams,
    threshold: usize,
    threads: usize,
) -> Vec<SimilarPair> {
    let sets: Vec<Vec<u32>> = (0..matrix.n_rows())
        .map(|i| matrix.row(i).to_vec())
        .collect();
    let lsh = MinHashLsh::build_with(&sets, params, threads);
    let mut pairs = Vec::new();
    for (i, j) in lsh.candidate_pairs_with(threads) {
        let d = matrix.row_hamming(i, j);
        if d <= threshold {
            pairs.push(SimilarPair::new(i, j, d));
        }
    }
    pairs
}

/// Builds groups from 0-distance pairs with the parallel grouping
/// kernel: the pair list is split over `threads` ranges, each range
/// unions into a local [`UnionFind`] forest, forests are joined in range
/// order ([`UnionFind::merge_from`]), and groups are assembled with the
/// parallel [`UnionFind::groups_min_size_with`]. Deterministic — the
/// sorted-groups contract makes the output independent of the thread
/// count and of the pair order.
fn groups_from_pairs_with(n: usize, pairs: &[SimilarPair], threads: usize) -> Vec<Vec<usize>> {
    let forest = rolediet_matrix::parallel::par_map_reduce_ranges(
        pairs.len(),
        threads,
        |range| {
            let mut local = UnionFind::new(n);
            for p in &pairs[range] {
                local.union(p.a, p.b);
            }
            local
        },
        |acc, part| acc.merge_from(&part),
    );
    match forest {
        Some(mut uf) => uf.groups_min_size_with(2, threads),
        None => Vec::new(),
    }
}

fn normalize_groups(mut groups: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.retain(|g| g.len() >= 2);
    groups.sort_unstable_by_key(|g| g[0]);
    groups
}

fn finalize(mut pairs: Vec<SimilarPair>, max_pairs: usize) -> Vec<SimilarPair> {
    pairs.sort_unstable_by_key(|p| (p.distance, p.a, p.b));
    pairs.dedup();
    pairs.truncate(max_pairs);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolediet_synth::{generate_matrix, MatrixGenConfig};

    fn strategies() -> Vec<Strategy> {
        vec![
            Strategy::Custom,
            Strategy::ExactDbscan,
            Strategy::hnsw_default(),
            Strategy::minhash_default(),
        ]
    }

    #[test]
    fn exact_strategies_recover_planted_groups_exactly() {
        let gen = generate_matrix(MatrixGenConfig::paper(200, 100, 21));
        let m = gen.sparse();
        for strategy in [Strategy::Custom, Strategy::ExactDbscan] {
            let groups = find_same_groups_with_empty(&m, &strategy, Parallelism::Sequential);
            assert_eq!(
                groups,
                gen.truth.exact_duplicate_groups,
                "strategy {}",
                strategy.name()
            );
        }
    }

    #[test]
    fn approximate_strategies_never_fabricate_groups() {
        let gen = generate_matrix(MatrixGenConfig::paper(150, 80, 22));
        let m = gen.sparse();
        for strategy in [Strategy::hnsw_default(), Strategy::minhash_default()] {
            let groups = find_same_groups(&m, &strategy, Parallelism::Sequential);
            for g in &groups {
                for w in g.windows(2) {
                    assert!(
                        m.rows_equal(w[0], w[1]),
                        "strategy {} reported non-identical rows",
                        strategy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn minhash_has_perfect_recall_on_duplicates() {
        // Identical sets always collide in every band.
        let gen = generate_matrix(MatrixGenConfig::paper(150, 80, 23));
        let m = gen.sparse();
        let groups =
            find_same_groups_with_empty(&m, &Strategy::minhash_default(), Parallelism::Sequential);
        assert_eq!(groups, gen.truth.exact_duplicate_groups);
    }

    #[test]
    fn all_strategies_find_the_figure1_groups() {
        let g = rolediet_model::TripartiteGraph::figure1_example();
        let ruam = g.ruam_sparse();
        for strategy in strategies() {
            let groups = find_same_groups(&ruam, &strategy, Parallelism::Sequential);
            assert_eq!(groups, vec![vec![1, 3]], "strategy {}", strategy.name());
        }
    }

    #[test]
    fn similar_pairs_exact_strategies_agree_with_brute_force() {
        let gen = generate_matrix(MatrixGenConfig {
            perturbed_per_cluster: 1,
            ..MatrixGenConfig::paper(120, 60, 24)
        });
        let m = gen.sparse();
        let tr = m.transpose();
        let cfg = SimilarityConfig {
            threshold: 2,
            include_disjoint: false,
            ..SimilarityConfig::default()
        };
        // Brute force with the same semantics (g >= 1).
        let mut brute = Vec::new();
        for i in 0..m.n_rows() {
            for j in (i + 1)..m.n_rows() {
                let d = m.row_hamming(i, j);
                if (1..=2).contains(&d) && m.row_dot(i, j) >= 1 {
                    brute.push(SimilarPair::new(i, j, d));
                }
            }
        }
        let brute = finalize(brute, usize::MAX);
        let custom = find_similar_pairs(&m, &tr, &Strategy::Custom, &cfg, Parallelism::Sequential);
        assert_eq!(custom, brute);
        // DBSCAN sees disjoint low-norm pairs too, so compare on the
        // common semantics: full brute force including disjoint pairs.
        let cfg_dj = SimilarityConfig {
            include_disjoint: true,
            ..cfg
        };
        let custom_dj =
            find_similar_pairs(&m, &tr, &Strategy::Custom, &cfg_dj, Parallelism::Sequential);
        let dbscan = find_similar_pairs(
            &m,
            &tr,
            &Strategy::ExactDbscan,
            &cfg_dj,
            Parallelism::Sequential,
        );
        assert_eq!(custom_dj, dbscan);
    }

    #[test]
    fn similar_pairs_cover_planted_similar_pairs() {
        let gen = generate_matrix(MatrixGenConfig {
            perturbed_per_cluster: 2,
            ..MatrixGenConfig::paper(150, 100, 25)
        });
        let m = gen.sparse();
        let tr = m.transpose();
        let cfg = SimilarityConfig::default();
        let pairs: std::collections::HashSet<(usize, usize)> =
            find_similar_pairs(&m, &tr, &Strategy::Custom, &cfg, Parallelism::Sequential)
                .into_iter()
                .map(|p| (p.a, p.b))
                .collect();
        for &(a, b) in &gen.truth.planted_similar_pairs {
            // A planted perturbed member shares the template's other bits,
            // so g >= 1 unless the template row had norm <= 1; the default
            // density makes that practically impossible at 100 columns.
            assert!(pairs.contains(&(a, b)), "missing planted pair ({a},{b})");
        }
    }

    #[test]
    fn approximate_similar_pairs_are_verified_true() {
        let gen = generate_matrix(MatrixGenConfig {
            perturbed_per_cluster: 1,
            ..MatrixGenConfig::paper(120, 60, 26)
        });
        let m = gen.sparse();
        let tr = m.transpose();
        let cfg = SimilarityConfig {
            threshold: 2,
            ..SimilarityConfig::default()
        };
        for strategy in [Strategy::hnsw_default(), Strategy::minhash_default()] {
            let pairs = find_similar_pairs(&m, &tr, &strategy, &cfg, Parallelism::Sequential);
            for p in pairs {
                let d = m.row_hamming(p.a, p.b);
                assert_eq!(d, p.distance, "strategy {}", strategy.name());
                assert!((1..=2).contains(&d));
            }
        }
    }

    #[test]
    fn hnsw_engine_halves_match_the_dispatch_entry_points() {
        // The pipeline's cached path (one engine, probed twice) must give
        // exactly what the strategy dispatch gives, at every batch size
        // and thread count — the engine's build is bit-identical to the
        // batch-0 sequential oracle.
        let gen = generate_matrix(MatrixGenConfig {
            perturbed_per_cluster: 1,
            ..MatrixGenConfig::paper(140, 70, 29)
        });
        let m = gen.sparse();
        let tr = m.transpose();
        let cfg = SimilarityConfig {
            threshold: 2,
            ..SimilarityConfig::default()
        };
        let strategy = Strategy::hnsw_default();
        let Strategy::ApproxHnsw { params, probe_k } = strategy else {
            unreachable!()
        };
        let groups = find_same_groups_with_empty(&m, &strategy, Parallelism::Sequential);
        let pairs = find_similar_pairs(&m, &tr, &strategy, &cfg, Parallelism::Sequential);
        for batch in [0usize, 1, 64] {
            for threads in [1usize, 4] {
                let engine = HnswEngine::build(&m, params, batch, threads);
                assert_eq!(
                    hnsw_same_groups(&engine, probe_k, threads),
                    groups,
                    "batch={batch} threads={threads}"
                );
                assert_eq!(
                    hnsw_similar_pairs(&engine, probe_k, &cfg, threads),
                    pairs,
                    "batch={batch} threads={threads}"
                );
                assert_eq!(engine.row_norm(0), m.row_norm(0));
                assert_eq!(engine.points().len(), m.n_rows());
                assert_eq!(engine.index().len(), m.n_rows());
            }
        }
    }

    #[test]
    fn parallelism_does_not_change_custom_results() {
        let gen = generate_matrix(MatrixGenConfig::paper(150, 80, 27));
        let m = gen.sparse();
        let tr = m.transpose();
        let cfg = SimilarityConfig {
            threshold: 3,
            ..SimilarityConfig::default()
        };
        let seq = find_similar_pairs(&m, &tr, &Strategy::Custom, &cfg, Parallelism::Sequential);
        let par = find_similar_pairs(&m, &tr, &Strategy::Custom, &cfg, Parallelism::Threads(4));
        assert_eq!(seq, par);
    }

    #[test]
    fn parallelism_does_not_change_any_strategy_results() {
        let gen = generate_matrix(MatrixGenConfig::paper(120, 60, 28));
        let m = gen.sparse();
        let tr = m.transpose();
        let cfg = SimilarityConfig {
            threshold: 2,
            ..SimilarityConfig::default()
        };
        for strategy in strategies() {
            let seq_groups = find_same_groups_with_empty(&m, &strategy, Parallelism::Sequential);
            let seq_pairs = find_similar_pairs(&m, &tr, &strategy, &cfg, Parallelism::Sequential);
            for threads in [2, 4, 8] {
                let p = Parallelism::Threads(threads);
                assert_eq!(
                    find_same_groups_with_empty(&m, &strategy, p),
                    seq_groups,
                    "groups differ: strategy {}, threads {threads}",
                    strategy.name()
                );
                assert_eq!(
                    find_similar_pairs(&m, &tr, &strategy, &cfg, p),
                    seq_pairs,
                    "pairs differ: strategy {}, threads {threads}",
                    strategy.name()
                );
            }
        }
    }
}
