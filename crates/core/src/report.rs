//! Detection results: findings per inefficiency type, with timings.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::config::DetectionConfig;
use crate::taxonomy::{InefficiencyKind, Side};

/// A pair of roles whose user or permission sets differ in `distance`
/// positions (a T5 finding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SimilarPair {
    /// Lower role index of the pair.
    pub a: usize,
    /// Higher role index of the pair.
    pub b: usize,
    /// Hamming distance between the two incidence rows (`1..=t`).
    pub distance: usize,
}

impl SimilarPair {
    /// Creates a pair, normalizing the order so `a < b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: usize, b: usize, distance: usize) -> Self {
        assert_ne!(a, b, "a similar pair needs two distinct roles");
        if a < b {
            SimilarPair { a, b, distance }
        } else {
            SimilarPair {
                a: b,
                b: a,
                distance,
            }
        }
    }
}

/// Worker-thread count each parallel stage actually ran with.
///
/// `1` means the stage ran sequentially (inline on the caller thread —
/// the substrate spawns no workers for a single chunk); `0` means the
/// stage did not run at all (e.g. T5 under `skip_similarity`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageThreads {
    /// Two-pass CSR construction of RUAM/RPAM from the graph.
    pub matrix_build: usize,
    /// Row/column-sum passes of the T1–T3 detectors.
    pub degree_detectors: usize,
    /// T4 signature build / clustering, user side.
    pub same_users: usize,
    /// T4 signature build / clustering, permission side.
    pub same_permissions: usize,
    /// Inverted-index transposes feeding T5 (both sides).
    pub transpose: usize,
    /// T5 pair streaming, user side.
    pub similar_users: usize,
    /// T5 pair streaming, permission side.
    pub similar_permissions: usize,
    /// T5 norm-bucketed disjoint supplement (both sides; `0` unless
    /// [`SimilarityConfig::include_disjoint`](crate::SimilarityConfig)
    /// and the custom strategy are active).
    pub disjoint_supplement: usize,
    /// MinHash sketching + LSH banding (`0` unless the MinHash strategy
    /// is active).
    pub minhash: usize,
    /// DBSCAN cluster assignment via the parallel connected-components
    /// grouping kernel (`0` unless the exact-DBSCAN strategy is active).
    pub cluster_expand: usize,
    /// Packed bounded-distance engine: neighbourhood precompute for the
    /// exact O(n²) T4/T5 stages (`0` unless the exact-DBSCAN strategy is
    /// active).
    pub distance_precompute: usize,
    /// Union-find group extraction — T4 signature-group verification and
    /// HNSW/LSH candidate-component grouping (`0` under the exact-DBSCAN
    /// strategy, whose groups come out of the cluster labels instead).
    pub group_extract: usize,
    /// Batch-parallel HNSW index construction — the phase-1 speculative
    /// searches of each generation (`0` unless the ApproxHnsw strategy is
    /// active).
    #[serde(default)]
    pub hnsw_build: usize,
}

/// Wall-clock time spent in each pipeline stage, plus the thread counts
/// the parallel stages used ([`StageThreads`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Building RUAM/RPAM from the graph.
    pub matrix_build: Duration,
    /// Linear-time detectors (T1–T3).
    pub degree_detectors: Duration,
    /// T4 on the user side.
    pub same_users: Duration,
    /// T4 on the permission side.
    pub same_permissions: Duration,
    /// T5 on the user side.
    pub similar_users: Duration,
    /// T5 on the permission side.
    pub similar_permissions: Duration,
    /// Packed-engine build + neighbourhood precompute for the exact
    /// O(n²) stages, accumulated across both sides of T4 and T5 (zero
    /// unless the exact-DBSCAN strategy is active; carved out of the
    /// per-stage timings so grouping is timed apart from the shared
    /// distance plane).
    pub distance_precompute: Duration,
    /// Number of norm-contiguous shard blocks the packed engine streamed
    /// the distance plane over (the larger of the two matrix sides).
    /// `1` means the flat resident engine (no memory budget, or a budget
    /// large enough for a single shard); `0` means the engine did not
    /// run (every strategy but exact-DBSCAN).
    #[serde(default)]
    pub distance_shards: usize,
    /// HNSW index construction (both sides), including the packed-engine
    /// build backing its distance calls (zero unless the ApproxHnsw
    /// strategy is active; carved out of the per-stage timings so probing
    /// is timed apart from the shared index build).
    #[serde(default)]
    pub hnsw_build: Duration,
    /// Worker-thread count per parallel stage.
    pub threads: StageThreads,
}

impl StageTimings {
    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.matrix_build
            + self.degree_detectors
            + self.same_users
            + self.same_permissions
            + self.similar_users
            + self.similar_permissions
            + self.distance_precompute
            + self.hnsw_build
    }
}

/// The full result of a detection run.
///
/// Role/user/permission identifiers are dense indices (the same indices
/// used by the graph's ids and the matrices' rows/columns). Group lists
/// are sorted by first member; members are ascending.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// T1 — users with no role.
    pub standalone_users: Vec<usize>,
    /// T1 — permissions granted by no role.
    pub standalone_permissions: Vec<usize>,
    /// T1 — roles with neither users nor permissions.
    pub standalone_roles: Vec<usize>,
    /// T2 — roles with permissions but no users.
    pub userless_roles: Vec<usize>,
    /// T2 — roles with users but no permissions.
    pub permless_roles: Vec<usize>,
    /// T3 — roles with exactly one user.
    pub single_user_roles: Vec<usize>,
    /// T3 — roles with exactly one permission.
    pub single_permission_roles: Vec<usize>,
    /// T4 — groups of roles with identical user sets.
    pub same_user_groups: Vec<Vec<usize>>,
    /// T4 — groups of roles with identical permission sets.
    pub same_permission_groups: Vec<Vec<usize>>,
    /// T5 — role pairs with similar (within threshold) user sets.
    pub similar_user_pairs: Vec<SimilarPair>,
    /// T5 — role pairs with similar permission sets.
    pub similar_permission_pairs: Vec<SimilarPair>,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// The configuration that produced this report.
    pub config: DetectionConfig,
}

impl Report {
    /// Total number of findings across all types (groups and pairs count
    /// as one finding each).
    pub fn total_findings(&self) -> usize {
        self.standalone_users.len()
            + self.standalone_permissions.len()
            + self.standalone_roles.len()
            + self.userless_roles.len()
            + self.permless_roles.len()
            + self.single_user_roles.len()
            + self.single_permission_roles.len()
            + self.same_user_groups.len()
            + self.same_permission_groups.len()
            + self.similar_user_pairs.len()
            + self.similar_permission_pairs.len()
    }

    /// Number of roles that could be removed by consolidating the T4
    /// groups on `side`: every group of `k` identical roles can shrink to
    /// one, saving `k − 1` (the paper's "about 10% of all roles" figure is
    /// this quantity summed over both sides).
    pub fn reducible_roles(&self, side: Side) -> usize {
        let groups = match side {
            Side::User => &self.same_user_groups,
            Side::Permission => &self.same_permission_groups,
        };
        groups.iter().map(|g| g.len().saturating_sub(1)).sum()
    }

    /// Roles involved in T4 groups on `side` (the paper's "8,000 roles
    /// sharing the same users" counts roles, not groups).
    pub fn roles_in_same_groups(&self, side: Side) -> usize {
        let groups = match side {
            Side::User => &self.same_user_groups,
            Side::Permission => &self.same_permission_groups,
        };
        groups.iter().map(Vec::len).sum()
    }

    /// Roles involved in at least one T5 pair on `side`.
    pub fn roles_in_similar_pairs(&self, side: Side) -> usize {
        let pairs = match side {
            Side::User => &self.similar_user_pairs,
            Side::Permission => &self.similar_permission_pairs,
        };
        let mut roles: Vec<usize> = pairs.iter().flat_map(|p| [p.a, p.b]).collect();
        roles.sort_unstable();
        roles.dedup();
        roles.len()
    }

    /// Finding counts keyed by taxonomy kind, in taxonomy order — the
    /// bridge between the report's typed fields and the
    /// [`InefficiencyKind`] enumeration (T4 counts roles in groups, T5
    /// counts roles in pairs, matching the paper's presentation).
    pub fn findings_by_kind(&self) -> Vec<(InefficiencyKind, usize)> {
        use rolediet_model::EntityKind;
        use InefficiencyKind::*;
        vec![
            (
                StandaloneNode(EntityKind::User),
                self.standalone_users.len(),
            ),
            (
                StandaloneNode(EntityKind::Role),
                self.standalone_roles.len(),
            ),
            (
                StandaloneNode(EntityKind::Permission),
                self.standalone_permissions.len(),
            ),
            (DisconnectedRole(Side::User), self.userless_roles.len()),
            (
                DisconnectedRole(Side::Permission),
                self.permless_roles.len(),
            ),
            (SingleLinkRole(Side::User), self.single_user_roles.len()),
            (
                SingleLinkRole(Side::Permission),
                self.single_permission_roles.len(),
            ),
            (
                DuplicateRoles(Side::User),
                self.roles_in_same_groups(Side::User),
            ),
            (
                DuplicateRoles(Side::Permission),
                self.roles_in_same_groups(Side::Permission),
            ),
            (
                SimilarRoles(Side::User),
                self.roles_in_similar_pairs(Side::User),
            ),
            (
                SimilarRoles(Side::Permission),
                self.roles_in_similar_pairs(Side::Permission),
            ),
        ]
    }

    /// Renders the report as an aligned plain-text summary table (the
    /// Section IV-B presentation).
    pub fn summary_table(&self) -> String {
        let rows: Vec<(String, usize)> = vec![
            ("T1 standalone users".into(), self.standalone_users.len()),
            (
                "T1 standalone permissions".into(),
                self.standalone_permissions.len(),
            ),
            ("T1 standalone roles".into(), self.standalone_roles.len()),
            ("T2 roles without users".into(), self.userless_roles.len()),
            (
                "T2 roles without permissions".into(),
                self.permless_roles.len(),
            ),
            ("T3 single-user roles".into(), self.single_user_roles.len()),
            (
                "T3 single-permission roles".into(),
                self.single_permission_roles.len(),
            ),
            (
                "T4 roles sharing the same users".into(),
                self.roles_in_same_groups(Side::User),
            ),
            (
                "T4 roles sharing the same permissions".into(),
                self.roles_in_same_groups(Side::Permission),
            ),
            (
                "T5 roles with similar users".into(),
                self.roles_in_similar_pairs(Side::User),
            ),
            (
                "T5 roles with similar permissions".into(),
                self.roles_in_similar_pairs(Side::Permission),
            ),
        ];
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, count) in rows {
            out.push_str(&format!("{name:<width$}  {count:>10}\n"));
        }
        out.push_str(&format!(
            "{:<width$}  {:>10}\n",
            "reducible roles (T4 consolidation)",
            self.reducible_roles(Side::User) + self.reducible_roles(Side::Permission),
            width = width
        ));
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similar_pair_normalizes_order() {
        let p = SimilarPair::new(5, 2, 1);
        assert_eq!((p.a, p.b, p.distance), (2, 5, 1));
    }

    #[test]
    #[should_panic(expected = "two distinct roles")]
    fn similar_pair_rejects_self_pair() {
        SimilarPair::new(3, 3, 0);
    }

    #[test]
    fn counting_helpers() {
        let report = Report {
            same_user_groups: vec![vec![0, 1, 2], vec![5, 6]],
            same_permission_groups: vec![vec![3, 4]],
            similar_user_pairs: vec![SimilarPair::new(7, 8, 1), SimilarPair::new(8, 9, 1)],
            ..Report::default()
        };
        assert_eq!(report.roles_in_same_groups(Side::User), 5);
        assert_eq!(report.roles_in_same_groups(Side::Permission), 2);
        assert_eq!(report.reducible_roles(Side::User), 3);
        assert_eq!(report.reducible_roles(Side::Permission), 1);
        assert_eq!(report.roles_in_similar_pairs(Side::User), 3);
        assert_eq!(report.roles_in_similar_pairs(Side::Permission), 0);
        assert_eq!(report.total_findings(), 5);
    }

    #[test]
    fn findings_by_kind_covers_the_whole_taxonomy() {
        let report = Report {
            standalone_users: vec![1],
            same_user_groups: vec![vec![0, 1, 2]],
            similar_permission_pairs: vec![SimilarPair::new(3, 4, 1)],
            ..Report::default()
        };
        let by_kind = report.findings_by_kind();
        assert_eq!(by_kind.len(), InefficiencyKind::all().len());
        let kinds: Vec<InefficiencyKind> = by_kind.iter().map(|&(k, _)| k).collect();
        assert_eq!(kinds, InefficiencyKind::all(), "taxonomy order");
        let count = |label: &str| {
            by_kind
                .iter()
                .find(|(k, _)| k.label() == label)
                .map(|&(_, c)| c)
                .unwrap()
        };
        assert_eq!(count("T1-user"), 1);
        assert_eq!(count("T4-user"), 3, "roles, not groups");
        assert_eq!(count("T5-permission"), 2, "roles, not pairs");
        assert_eq!(count("T2-user"), 0);
    }

    #[test]
    fn summary_table_contains_all_rows() {
        let report = Report::default();
        let table = report.summary_table();
        assert!(table.contains("T1 standalone users"));
        assert!(table.contains("T5 roles with similar permissions"));
        assert!(table.contains("reducible roles"));
        assert_eq!(table.lines().count(), 12);
    }

    #[test]
    fn timings_total() {
        let t = StageTimings {
            matrix_build: Duration::from_millis(1),
            degree_detectors: Duration::from_millis(2),
            same_users: Duration::from_millis(3),
            same_permissions: Duration::from_millis(4),
            similar_users: Duration::from_millis(5),
            similar_permissions: Duration::from_millis(6),
            distance_precompute: Duration::from_millis(7),
            distance_shards: 1,
            hnsw_build: Duration::from_millis(8),
            threads: StageThreads::default(),
        };
        assert_eq!(t.total(), Duration::from_millis(36));
    }

    #[test]
    fn stage_threads_roundtrip_with_timings() {
        let t = StageTimings {
            threads: StageThreads {
                matrix_build: 4,
                degree_detectors: 4,
                same_users: 4,
                same_permissions: 4,
                transpose: 4,
                similar_users: 8,
                similar_permissions: 8,
                disjoint_supplement: 8,
                minhash: 0,
                cluster_expand: 0,
                distance_precompute: 8,
                group_extract: 4,
                hnsw_build: 8,
            },
            ..StageTimings::default()
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: StageTimings = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.threads.similar_users, 8);
    }

    #[test]
    fn serde_roundtrip() {
        let report = Report {
            standalone_users: vec![1, 2],
            similar_user_pairs: vec![SimilarPair::new(0, 9, 1)],
            ..Report::default()
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
