//! Incremental T1–T5 maintenance under edge churn.
//!
//! The batch pipeline recomputes everything per run; between runs an IAM
//! system keeps mutating, and the paper's §IV deployment model (detect
//! periodically, catch stragglers next run) leaves a latency gap that a
//! single-edge change does not justify: a full rerun costs seconds at
//! real-org scale while one churn event flips one matrix cell. This
//! module closes that gap with two online engines, both using the batch
//! algorithms as their test oracle:
//!
//! * [`IncrementalDuplicates`] — the original T4-only index over one
//!   matrix, driven by per-cell [`set`](IncrementalDuplicates::set)
//!   calls.
//! * [`IncrementalPipeline`] — the full-report engine: it consumes
//!   [`EdgeDelta`] events (the stream a
//!   [`ChurnSimulator`](../../rolediet_synth/churn/struct.ChurnSimulator.html)
//!   records, or any importer can synthesize) and maintains every
//!   finding class of the [`Report`] online:
//!
//!   * **T1–T3** — four degree-counter vectors (roles per user, roles
//!     per permission, users per role, permissions per role), updated in
//!     O(1) per edge flip; the report lists fall out of one linear scan.
//!   * **T4** — width-independent signature buckets per side: each
//!     touched role re-hashes its (ascending) index row and moves
//!     between buckets in `O(row + log buckets)`. Groups are verified
//!     bit-for-bit at report time, so hash collisions cannot leak
//!     through. Signatures hash the index *list*, not a packed bit
//!     image, so `AddUser`/`AddPermission` (which widen rows) touch
//!     nothing.
//!   * **T5** — a [`PackedRows`] engine per side, patched row-wise: an
//!     edge flip moves one row's norm by exactly 1, so
//!     [`range_query_within`](PackedRows::range_query_within) re-probes
//!     at most `2t + 1` norm buckets for the touched row, and the
//!     maintained pair set (ordered `(distance, a, b)` exactly like the
//!     batch sort) is updated with only that row's partners.
//!
//!   After every applied event the maintained findings are bit-identical
//!   to [`Pipeline::run`](crate::Pipeline::run) on the materialized
//!   graph under an exact strategy — the property proptests pin at
//!   multiple thread counts.
//!
//! Between two reports, [`ReportDelta`] (modeled on the added/removed
//! shape of `rolediet_model::diff`) names exactly which findings
//! appeared and disappeared.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use rolediet_matrix::{hash_words, BitVec, CsrMatrix, PackedRows, RowMatrix, RowSignature};
use rolediet_model::{EdgeDelta, RoleId, TripartiteGraph};

use crate::config::{DetectionConfig, SimilarityConfig};
use crate::cooccur;
use crate::report::{Report, SimilarPair};

/// Online index of duplicate rows (roles with identical user or
/// permission sets).
///
/// # Examples
///
/// ```
/// use rolediet_core::incremental::IncrementalDuplicates;
///
/// let mut idx = IncrementalDuplicates::new(3, 4);
/// idx.set(0, 1, true);
/// idx.set(2, 1, true);
/// assert_eq!(idx.groups(), vec![vec![0, 2]]);
/// idx.set(2, 3, true); // rows diverge again
/// assert!(idx.groups().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalDuplicates {
    rows: Vec<BitVec>,
    /// Row width, stored explicitly so a zero-row index still knows it.
    cols: usize,
    signatures: Vec<RowSignature>,
    buckets: BTreeMap<RowSignature, BTreeSet<usize>>,
    /// Report groups of all-zero rows too? Default `false`, matching the
    /// batch pipeline's semantics (empty roles are T2 findings).
    include_empty: bool,
}

impl IncrementalDuplicates {
    /// Creates an index of `rows` all-zero rows of width `cols`.
    pub fn new(rows: usize, cols: usize) -> Self {
        let empty = BitVec::new(cols);
        let sig = hash_words(empty.as_words());
        let mut buckets: BTreeMap<RowSignature, BTreeSet<usize>> = BTreeMap::new();
        // Empty buckets are never stored (`set` removes them), so a
        // zero-row index registers nothing.
        if rows > 0 {
            buckets.insert(sig, (0..rows).collect());
        }
        IncrementalDuplicates {
            rows: vec![empty; rows],
            cols,
            signatures: vec![sig; rows],
            buckets,
            include_empty: false,
        }
    }

    /// Builds the index from an existing matrix, one row at a time: each
    /// row is materialized and hashed once (`O(nnz + rows · words)`
    /// total), instead of re-hashing the whole row per set bit.
    pub fn from_matrix(matrix: &CsrMatrix) -> Self {
        let (n, cols) = (matrix.rows(), matrix.cols());
        let mut rows = Vec::with_capacity(n);
        let mut signatures = Vec::with_capacity(n);
        let mut buckets: BTreeMap<RowSignature, BTreeSet<usize>> = BTreeMap::new();
        for r in 0..n {
            let mut row = BitVec::new(cols);
            for &c in matrix.row(r) {
                row.set(c as usize, true);
            }
            let sig = hash_words(row.as_words());
            buckets.entry(sig).or_default().insert(r);
            rows.push(row);
            signatures.push(sig);
        }
        IncrementalDuplicates {
            rows,
            cols,
            signatures,
            buckets,
            include_empty: false,
        }
    }

    /// Whether all-empty rows are reported as a duplicate group.
    pub fn include_empty(mut self, yes: bool) -> Self {
        self.include_empty = yes;
        self
    }

    /// Number of tracked rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Row width.
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Current contents of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.rows[r]
    }

    /// Sets cell `(row, col)`; updates the duplicate state. Returns
    /// `true` if the cell changed.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, row: usize, col: usize, value: bool) -> bool {
        if self.rows[row].get(col) == value {
            return false;
        }
        let old_sig = self.signatures[row];
        if let Some(bucket) = self.buckets.get_mut(&old_sig) {
            bucket.remove(&row);
            if bucket.is_empty() {
                self.buckets.remove(&old_sig);
            }
        }
        self.rows[row].set(col, value);
        let new_sig = hash_words(self.rows[row].as_words());
        self.signatures[row] = new_sig;
        self.buckets.entry(new_sig).or_default().insert(row);
        true
    }

    /// The rows currently identical to `row` (including itself), in
    /// ascending order — verified bit-for-bit, so hash collisions cannot
    /// leak through.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn duplicates_of(&self, row: usize) -> Vec<usize> {
        let sig = self.signatures[row];
        self.buckets[&sig]
            .iter()
            .copied()
            .filter(|&r| self.rows[r] == self.rows[row])
            .collect()
    }

    /// All current duplicate groups (≥ 2 members), sorted by first
    /// member; empty-row groups filtered per [`include_empty`].
    ///
    /// [`include_empty`]: Self::include_empty
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for members in self.buckets.values() {
            if members.len() < 2 {
                continue;
            }
            // Verify within the bucket (collision-safe): partition by
            // actual content.
            let mut remaining: Vec<usize> = members.iter().copied().collect();
            while remaining.len() >= 2 {
                let pivot = remaining[0];
                let (same, diff): (Vec<usize>, Vec<usize>) = remaining
                    .into_iter()
                    .partition(|&r| self.rows[r] == self.rows[pivot]);
                if same.len() >= 2 && (self.include_empty || !self.rows[pivot].is_zero()) {
                    out.push(same);
                }
                remaining = diff;
            }
        }
        out.sort_unstable_by_key(|g| g[0]);
        out
    }
}

/// Width-independent row signature: hashes the ascending column-index
/// list itself (as `u64` words) instead of a packed bit image, so
/// widening the column space never re-hashes untouched rows. Collisions
/// are harmless — every consumer verifies bucket members bit-for-bit.
fn indices_signature(indices: &[u32]) -> RowSignature {
    let words: Vec<u64> = indices.iter().map(|&c| u64::from(c)).collect();
    hash_words(&words)
}

/// Added/removed findings of one class between two reports — the same
/// shape as `rolediet_model::diff`'s dataset deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FindingDelta<T> {
    /// Findings present after but not before.
    pub added: Vec<T>,
    /// Findings present before but not after.
    pub removed: Vec<T>,
}

// The vendored serde_derive does not handle generic types, so the
// `{added, removed}` map shape is spelled out by hand.
impl<T: Serialize> Serialize for FindingDelta<T> {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("added".to_owned(), self.added.to_content()),
            ("removed".to_owned(), self.removed.to_content()),
        ])
    }
}

impl<T: Deserialize> Deserialize for FindingDelta<T> {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            content
                .get(name)
                .ok_or_else(|| serde::Error::custom(format!("missing field `{name}`")))
        };
        Ok(FindingDelta {
            added: Vec::<T>::from_content(field("added")?)?,
            removed: Vec::<T>::from_content(field("removed")?)?,
        })
    }
}

impl<T: Ord + Clone> FindingDelta<T> {
    fn between(before: &[T], after: &[T]) -> Self {
        let was: BTreeSet<&T> = before.iter().collect();
        let now: BTreeSet<&T> = after.iter().collect();
        FindingDelta {
            added: after.iter().filter(|x| !was.contains(x)).cloned().collect(),
            removed: before
                .iter()
                .filter(|x| !now.contains(x))
                .cloned()
                .collect(),
        }
    }
}

impl<T> FindingDelta<T> {
    /// `true` when nothing was added or removed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Number of added plus removed findings.
    pub fn change_count(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

/// Finding-level difference between two [`Report`]s: per finding class,
/// which entries appeared and which disappeared (order preserved from
/// the respective report). Timings and config are not compared.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportDelta {
    /// T1 — users with no role.
    pub standalone_users: FindingDelta<usize>,
    /// T1 — permissions granted by no role.
    pub standalone_permissions: FindingDelta<usize>,
    /// T1 — roles with neither users nor permissions.
    pub standalone_roles: FindingDelta<usize>,
    /// T2 — roles with permissions but no users.
    pub userless_roles: FindingDelta<usize>,
    /// T2 — roles with users but no permissions.
    pub permless_roles: FindingDelta<usize>,
    /// T3 — roles with exactly one user.
    pub single_user_roles: FindingDelta<usize>,
    /// T3 — roles with exactly one permission.
    pub single_permission_roles: FindingDelta<usize>,
    /// T4 — groups of roles with identical user sets.
    pub same_user_groups: FindingDelta<Vec<usize>>,
    /// T4 — groups of roles with identical permission sets.
    pub same_permission_groups: FindingDelta<Vec<usize>>,
    /// T5 — similar-user role pairs.
    pub similar_user_pairs: FindingDelta<SimilarPair>,
    /// T5 — similar-permission role pairs.
    pub similar_permission_pairs: FindingDelta<SimilarPair>,
}

impl ReportDelta {
    /// Computes the finding-level difference `after − before`.
    pub fn between(before: &Report, after: &Report) -> Self {
        ReportDelta {
            standalone_users: FindingDelta::between(
                &before.standalone_users,
                &after.standalone_users,
            ),
            standalone_permissions: FindingDelta::between(
                &before.standalone_permissions,
                &after.standalone_permissions,
            ),
            standalone_roles: FindingDelta::between(
                &before.standalone_roles,
                &after.standalone_roles,
            ),
            userless_roles: FindingDelta::between(&before.userless_roles, &after.userless_roles),
            permless_roles: FindingDelta::between(&before.permless_roles, &after.permless_roles),
            single_user_roles: FindingDelta::between(
                &before.single_user_roles,
                &after.single_user_roles,
            ),
            single_permission_roles: FindingDelta::between(
                &before.single_permission_roles,
                &after.single_permission_roles,
            ),
            same_user_groups: FindingDelta::between(
                &before.same_user_groups,
                &after.same_user_groups,
            ),
            same_permission_groups: FindingDelta::between(
                &before.same_permission_groups,
                &after.same_permission_groups,
            ),
            similar_user_pairs: FindingDelta::between(
                &before.similar_user_pairs,
                &after.similar_user_pairs,
            ),
            similar_permission_pairs: FindingDelta::between(
                &before.similar_permission_pairs,
                &after.similar_permission_pairs,
            ),
        }
    }

    /// `true` when no finding class changed.
    pub fn is_empty(&self) -> bool {
        self.standalone_users.is_empty()
            && self.standalone_permissions.is_empty()
            && self.standalone_roles.is_empty()
            && self.userless_roles.is_empty()
            && self.permless_roles.is_empty()
            && self.single_user_roles.is_empty()
            && self.single_permission_roles.is_empty()
            && self.same_user_groups.is_empty()
            && self.same_permission_groups.is_empty()
            && self.similar_user_pairs.is_empty()
            && self.similar_permission_pairs.is_empty()
    }

    /// Total number of added plus removed findings across all classes.
    pub fn change_count(&self) -> usize {
        self.standalone_users.change_count()
            + self.standalone_permissions.change_count()
            + self.standalone_roles.change_count()
            + self.userless_roles.change_count()
            + self.permless_roles.change_count()
            + self.single_user_roles.change_count()
            + self.single_permission_roles.change_count()
            + self.same_user_groups.change_count()
            + self.same_permission_groups.change_count()
            + self.similar_user_pairs.change_count()
            + self.similar_permission_pairs.change_count()
    }
}

/// The T5 state of one side: a patchable [`PackedRows`] engine plus the
/// maintained pair set, mirrored per row for O(partners) removal.
#[derive(Debug, Clone, PartialEq)]
struct SimilarState {
    engine: PackedRows,
    /// Per-row partner → distance map (both directions stored).
    partners: Vec<BTreeMap<u32, u32>>,
    /// All maintained pairs as `(distance, a, b)`, `a < b` — the batch
    /// finalize order, so the report is a prefix iteration.
    ordered: BTreeSet<(u32, u32, u32)>,
}

impl SimilarState {
    fn build(matrix: &CsrMatrix, similarity: &SimilarityConfig, threads: usize) -> Self {
        let engine = PackedRows::from_matrix(matrix, threads);
        let transpose = matrix.transpose_with(threads);
        // Maintain the *full* pair set; `max_pairs` is a report-time
        // truncation (the batch path sorts before truncating, so a
        // maintained prefix is only correct over the complete set).
        let full = SimilarityConfig {
            max_pairs: usize::MAX,
            ..*similarity
        };
        let mut partners: Vec<BTreeMap<u32, u32>> = vec![BTreeMap::new(); matrix.n_rows()];
        let mut ordered = BTreeSet::new();
        for p in cooccur::similar_pairs_parallel(matrix, &transpose, &full, threads) {
            partners[p.a].insert(p.b as u32, p.distance as u32);
            partners[p.b].insert(p.a as u32, p.distance as u32);
            ordered.insert((p.distance as u32, p.a as u32, p.b as u32));
        }
        SimilarState {
            engine,
            partners,
            ordered,
        }
    }

    /// Re-derives every pair involving `r` after its row changed to
    /// `row`: drop the old partners, patch the engine, re-probe only
    /// `r`'s norm band.
    fn retouch(&mut self, r: usize, row: &[u32], similarity: &SimilarityConfig) {
        let r32 = r as u32;
        for (j, d) in std::mem::take(&mut self.partners[r]) {
            self.partners[j as usize].remove(&r32);
            let (a, b) = if r32 < j { (r32, j) } else { (j, r32) };
            self.ordered.remove(&(d, a, b));
        }
        self.engine.patch_row(r, row);
        self.probe(r, similarity);
    }

    /// Probes row `r`'s norm band (`≤ 2t + 1` buckets) and records every
    /// surviving pair. The batch T5 set is: distance `1..=t`, and — with
    /// `include_disjoint` off — at least one shared column, i.e.
    /// `gⁱʲ = (nᵢ + nⱼ − d) / 2 ≥ 1 ⇔ nᵢ + nⱼ ≥ d + 2`.
    fn probe(&mut self, r: usize, similarity: &SimilarityConfig) {
        let r32 = r as u32;
        let nr = self.engine.row_norm(r);
        for (j, d) in self.engine.range_query_within(r, similarity.threshold) {
            if j == r || d == 0 {
                continue; // self and exact duplicates (T4) are not T5
            }
            if !similarity.include_disjoint && nr + self.engine.row_norm(j) < d + 2 {
                continue;
            }
            let (a, b) = if r < j {
                (r32, j as u32)
            } else {
                (j as u32, r32)
            };
            self.partners[r].insert(j as u32, d as u32);
            self.partners[j].insert(r32, d as u32);
            self.ordered.insert((d as u32, a, b));
        }
    }
}

/// One side (RUAM or RPAM) of the maintained state: T4 signature buckets
/// always, T5 similarity state unless the pipeline skips it.
#[derive(Debug, Clone, PartialEq)]
struct SideState {
    sigs: Vec<RowSignature>,
    buckets: BTreeMap<RowSignature, BTreeSet<u32>>,
    similar: Option<SimilarState>,
}

impl SideState {
    fn build(matrix: &CsrMatrix, config: &DetectionConfig, threads: usize) -> Self {
        let n = matrix.rows();
        let mut sigs = Vec::with_capacity(n);
        let mut buckets: BTreeMap<RowSignature, BTreeSet<u32>> = BTreeMap::new();
        for r in 0..n {
            let sig = indices_signature(matrix.row(r));
            buckets.entry(sig).or_default().insert(r as u32);
            sigs.push(sig);
        }
        let similar = if config.skip_similarity {
            None
        } else {
            Some(SimilarState::build(matrix, &config.similarity, threads))
        };
        SideState {
            sigs,
            buckets,
            similar,
        }
    }

    /// Row `r` changed to `row` (ascending indices): move it between
    /// signature buckets and re-derive its T5 pairs.
    fn touch(&mut self, r: usize, row: &[u32], similarity: &SimilarityConfig) {
        let old = self.sigs[r];
        let new = indices_signature(row);
        if new != old {
            if let Some(members) = self.buckets.get_mut(&old) {
                members.remove(&(r as u32));
                if members.is_empty() {
                    self.buckets.remove(&old);
                }
            }
            self.buckets.entry(new).or_default().insert(r as u32);
            self.sigs[r] = new;
        }
        if let Some(sim) = &mut self.similar {
            sim.retouch(r, row, similarity);
        }
    }

    /// A new (empty) role row was appended.
    fn add_row(&mut self, similarity: &SimilarityConfig) {
        let r = self.sigs.len();
        let sig = indices_signature(&[]);
        self.sigs.push(sig);
        self.buckets.entry(sig).or_default().insert(r as u32);
        if let Some(sim) = &mut self.similar {
            sim.engine.push_row(&[]);
            sim.partners.push(BTreeMap::new());
            // An empty row can only pair disjointly (g = 0); probe's
            // filter handles both settings.
            sim.probe(r, similarity);
        }
    }

    /// The column space widened (a user/permission node was added).
    /// Signatures hash index lists, so no row is touched; only the
    /// engine's geometry grows.
    fn grow_cols(&mut self, cols: usize) {
        if let Some(sim) = &mut self.similar {
            sim.engine.grow_cols(cols);
        }
    }

    /// Current duplicate groups, verified bit-for-bit through
    /// `rows_equal` — the batch output shape: groups sorted by first
    /// member, members ascending, empty-row groups filtered unless
    /// `include_empty`.
    fn groups(
        &self,
        include_empty: bool,
        rows_equal: &dyn Fn(usize, usize) -> bool,
        row_is_empty: &dyn Fn(usize) -> bool,
    ) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for members in self.buckets.values() {
            if members.len() < 2 {
                continue;
            }
            let mut remaining: Vec<usize> = members.iter().map(|&r| r as usize).collect();
            while remaining.len() >= 2 {
                let pivot = remaining[0];
                let (same, diff): (Vec<usize>, Vec<usize>) = remaining
                    .into_iter()
                    .partition(|&r| r == pivot || rows_equal(pivot, r));
                if same.len() >= 2 && (include_empty || !row_is_empty(pivot)) {
                    out.push(same);
                }
                remaining = diff;
            }
        }
        out.sort_unstable_by_key(|g| g[0]);
        out
    }

    /// Current similar pairs in batch finalize order (distance, a, b),
    /// truncated to `max_pairs`. Empty when similarity is skipped.
    fn pairs(&self, max_pairs: usize) -> Vec<SimilarPair> {
        match &self.similar {
            Some(sim) => sim
                .ordered
                .iter()
                .take(max_pairs)
                .map(|&(d, a, b)| SimilarPair {
                    a: a as usize,
                    b: b as usize,
                    distance: d as usize,
                })
                .collect(),
            None => Vec::new(),
        }
    }
}

/// The full detection state maintained online under [`EdgeDelta`]
/// events.
///
/// Construction runs the same parallel builds as the batch pipeline
/// (matrix projection, signature pass, co-occurrence stream); from then
/// on every [`apply`](Self::apply) costs `O(row + norm band)` instead of
/// a full rerun, and [`report`](Self::report) assembles the current
/// findings in one linear pass over the maintained state.
///
/// The maintained semantics are *exact* (the custom strategy's): under
/// an exact strategy in [`DetectionConfig`] the report is bit-identical
/// to [`Pipeline::run`](crate::Pipeline::run) on the materialized graph;
/// approximate strategies (HNSW, MinHash) may report fewer pairs than
/// this engine.
///
/// # Examples
///
/// ```
/// use rolediet_core::incremental::IncrementalPipeline;
/// use rolediet_core::{DetectionConfig, Pipeline};
/// use rolediet_model::{EdgeDelta, TripartiteGraph};
///
/// let graph = TripartiteGraph::figure1_example();
/// let config = DetectionConfig::default();
/// let mut inc = IncrementalPipeline::new(&graph, config);
/// // R01 loses its only user: U01 goes standalone, R01 goes userless.
/// inc.apply(&EdgeDelta::Revoke { role: 0, user: 0 })?;
/// let report = inc.report();
/// assert!(report.standalone_users.contains(&0));
/// assert!(report.userless_roles.contains(&0));
/// # Ok::<(), rolediet_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalPipeline {
    config: DetectionConfig,
    graph: TripartiteGraph,
    /// Roles per user (RUAM column sums).
    user_roles: Vec<u32>,
    /// Roles per permission (RPAM column sums).
    perm_roles: Vec<u32>,
    /// Users per role (RUAM row sums).
    role_users: Vec<u32>,
    /// Permissions per role (RPAM row sums).
    role_perms: Vec<u32>,
    users: SideState,
    perms: SideState,
}

impl IncrementalPipeline {
    /// Builds the maintained state from a snapshot of `graph` (copied in)
    /// under `config`, using `config.parallelism` workers for the batch
    /// builds.
    pub fn new(graph: &TripartiteGraph, config: DetectionConfig) -> Self {
        let threads = config.parallelism.threads();
        let ruam = graph.ruam_sparse_with(threads);
        let rpam = graph.rpam_sparse_with(threads);
        let users = SideState::build(&ruam, &config, threads);
        let perms = SideState::build(&rpam, &config, threads);
        let to_u32 = |sums: Vec<usize>| sums.into_iter().map(|s| s as u32).collect();
        IncrementalPipeline {
            config,
            graph: graph.clone(),
            user_roles: to_u32(ruam.col_sums_with(threads)),
            perm_roles: to_u32(rpam.col_sums_with(threads)),
            role_users: to_u32(ruam.row_sums_with(threads)),
            role_perms: to_u32(rpam.row_sums_with(threads)),
            users,
            perms,
        }
    }

    /// The materialized graph (always in sync with the maintained
    /// findings).
    pub fn graph(&self) -> &TripartiteGraph {
        &self.graph
    }

    /// The configuration the maintained findings are reported under.
    pub fn config(&self) -> &DetectionConfig {
        &self.config
    }

    /// Applies one delta to the graph and the maintained state. Returns
    /// whether the graph changed (a no-op edge flip touches nothing).
    /// On an error (unknown id) neither the graph nor the state is
    /// modified.
    pub fn apply(&mut self, delta: &EdgeDelta) -> rolediet_model::Result<bool> {
        let changed = delta.apply(&mut self.graph)?;
        if !changed {
            return Ok(false);
        }
        let similarity = self.config.similarity;
        match *delta {
            EdgeDelta::AddUser => {
                self.user_roles.push(0);
                self.users.grow_cols(self.graph.n_users());
            }
            EdgeDelta::AddPermission => {
                self.perm_roles.push(0);
                self.perms.grow_cols(self.graph.n_permissions());
            }
            EdgeDelta::AddRole => {
                self.role_users.push(0);
                self.role_perms.push(0);
                self.users.add_row(&similarity);
                self.perms.add_row(&similarity);
            }
            EdgeDelta::Assign { role, user } => {
                self.user_roles[user as usize] += 1;
                self.role_users[role as usize] += 1;
                self.touch_user_side(role as usize);
            }
            EdgeDelta::Revoke { role, user } => {
                self.user_roles[user as usize] -= 1;
                self.role_users[role as usize] -= 1;
                self.touch_user_side(role as usize);
            }
            EdgeDelta::Grant { role, permission } => {
                self.perm_roles[permission as usize] += 1;
                self.role_perms[role as usize] += 1;
                self.touch_perm_side(role as usize);
            }
            EdgeDelta::Ungrant { role, permission } => {
                self.perm_roles[permission as usize] -= 1;
                self.role_perms[role as usize] -= 1;
                self.touch_perm_side(role as usize);
            }
        }
        Ok(true)
    }

    fn touch_user_side(&mut self, role: usize) {
        let row: Vec<u32> = self
            .graph
            .users_of(RoleId::from_index(role))
            .map(|u| u.0)
            .collect();
        self.users.touch(role, &row, &self.config.similarity);
    }

    fn touch_perm_side(&mut self, role: usize) {
        let row: Vec<u32> = self
            .graph
            .permissions_of(RoleId::from_index(role))
            .map(|p| p.0)
            .collect();
        self.perms.touch(role, &row, &self.config.similarity);
    }

    /// Applies a whole delta stream in order. On an error the stream is
    /// partially applied (every delta before the failing one), and the
    /// maintained state stays consistent with the graph.
    pub fn apply_all(&mut self, stream: &[EdgeDelta]) -> rolediet_model::Result<()> {
        for delta in stream {
            self.apply(delta)?;
        }
        Ok(())
    }

    /// Applies a delta stream and returns which findings appeared and
    /// disappeared across the batch.
    pub fn apply_batch(&mut self, stream: &[EdgeDelta]) -> rolediet_model::Result<ReportDelta> {
        let before = self.report();
        self.apply_all(stream)?;
        Ok(ReportDelta::between(&before, &self.report()))
    }

    /// Assembles the current findings as a [`Report`]: T1–T3 from the
    /// degree counters, T4 from the verified signature buckets, T5 from
    /// the maintained ordered pair set. `timings` is zero (nothing was
    /// recomputed); `config` is the pipeline's configuration.
    pub fn report(&self) -> Report {
        let mut report = Report {
            config: self.config,
            ..Report::default()
        };
        for (u, &deg) in self.user_roles.iter().enumerate() {
            if deg == 0 {
                report.standalone_users.push(u);
            }
        }
        for (p, &deg) in self.perm_roles.iter().enumerate() {
            if deg == 0 {
                report.standalone_permissions.push(p);
            }
        }
        for (r, (&us, &ps)) in self.role_users.iter().zip(&self.role_perms).enumerate() {
            match (us, ps) {
                (0, 0) => report.standalone_roles.push(r),
                (0, _) => report.userless_roles.push(r),
                (_, 0) => report.permless_roles.push(r),
                _ => {}
            }
            if us == 1 {
                report.single_user_roles.push(r);
            }
            if ps == 1 {
                report.single_permission_roles.push(r);
            }
        }
        let include_empty = self.config.include_empty_duplicates;
        report.same_user_groups = self.users.groups(
            include_empty,
            &|a, b| {
                self.graph
                    .users_of(RoleId::from_index(a))
                    .eq(self.graph.users_of(RoleId::from_index(b)))
            },
            &|r| self.role_users[r] == 0,
        );
        report.same_permission_groups = self.perms.groups(
            include_empty,
            &|a, b| {
                self.graph
                    .permissions_of(RoleId::from_index(a))
                    .eq(self.graph.permissions_of(RoleId::from_index(b)))
            },
            &|r| self.role_perms[r] == 0,
        );
        if !self.config.skip_similarity {
            let max_pairs = self.config.similarity.max_pairs;
            report.similar_user_pairs = self.users.pairs(max_pairs);
            report.similar_permission_pairs = self.perms.pairs(max_pairs);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cooccur::same_groups;
    use crate::pipeline::Pipeline;
    use crate::report::StageTimings;

    #[test]
    fn tracks_convergence_and_divergence() {
        let mut idx = IncrementalDuplicates::new(3, 5);
        assert!(idx.groups().is_empty(), "empty rows excluded by default");
        assert!(idx.set(0, 2, true));
        assert!(!idx.set(0, 2, true), "idempotent");
        assert!(idx.set(1, 2, true));
        assert_eq!(idx.groups(), vec![vec![0, 1]]);
        assert_eq!(idx.duplicates_of(0), vec![0, 1]);
        assert!(idx.set(1, 4, true));
        assert!(idx.groups().is_empty());
        assert!(idx.set(1, 4, false));
        assert_eq!(idx.groups(), vec![vec![0, 1]]);
    }

    #[test]
    fn include_empty_matches_batch_semantics() {
        let idx = IncrementalDuplicates::new(3, 4);
        assert!(idx.groups().is_empty());
        let idx = IncrementalDuplicates::new(3, 4).include_empty(true);
        assert_eq!(idx.groups(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn zero_row_index_keeps_width_and_bucket_invariant() {
        let idx = IncrementalDuplicates::new(0, 7);
        assert_eq!(idx.n_rows(), 0);
        assert_eq!(idx.n_cols(), 7, "width must not depend on rows");
        assert!(idx.groups().is_empty());
        assert!(
            idx.buckets.is_empty(),
            "the bucket invariant is 'empty buckets are removed'"
        );
        let idx = IncrementalDuplicates::from_matrix(&CsrMatrix::zeros(0, 4));
        assert_eq!(idx.n_cols(), 4);
        assert!(idx.buckets.is_empty());
    }

    #[test]
    fn from_matrix_matches_batch_groups() {
        let m = CsrMatrix::from_rows_of_indices(
            5,
            6,
            &[vec![0, 1], vec![2], vec![0, 1], vec![], vec![2]],
        )
        .unwrap();
        let idx = IncrementalDuplicates::from_matrix(&m);
        assert_eq!(
            idx.groups(),
            same_groups(&m)
                .into_iter()
                .filter(|g| m.row_norm(g[0]) > 0)
                .collect::<Vec<_>>()
        );
        assert_eq!(idx.groups(), vec![vec![0, 2], vec![1, 4]]);
    }

    #[test]
    fn from_matrix_bulk_build_equals_per_cell_build() {
        let m = CsrMatrix::from_rows_of_indices(
            4,
            70,
            &[vec![0, 65], vec![], vec![0, 65], vec![1, 2, 69]],
        )
        .unwrap();
        let bulk = IncrementalDuplicates::from_matrix(&m);
        let mut cells = IncrementalDuplicates::new(m.rows(), m.cols());
        for r in 0..m.rows() {
            for &c in m.row(r) {
                cells.set(r, c as usize, true);
            }
        }
        assert_eq!(bulk.signatures, cells.signatures);
        assert_eq!(bulk.buckets, cells.buckets);
        assert_eq!(bulk.groups(), cells.groups());
    }

    #[test]
    fn random_edit_sequences_agree_with_batch_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let (rows, cols) = (12usize, 10usize);
        let mut idx = IncrementalDuplicates::new(rows, cols);
        let mut reference: Vec<Vec<usize>> = vec![Vec::new(); rows];
        for step in 0..500 {
            let r = rng.gen_range(0..rows);
            let c = rng.gen_range(0..cols);
            let v = rng.gen_bool(0.55);
            idx.set(r, c, v);
            if v {
                if !reference[r].contains(&c) {
                    reference[r].push(c);
                }
            } else {
                reference[r].retain(|&x| x != c);
            }
            if step % 25 == 0 {
                let m = CsrMatrix::from_rows_of_indices(rows, cols, &reference).unwrap();
                let batch: Vec<Vec<usize>> = same_groups(&m)
                    .into_iter()
                    .filter(|g| m.row_norm(g[0]) > 0)
                    .collect();
                assert_eq!(idx.groups(), batch, "step {step}");
            }
        }
    }

    #[test]
    fn duplicates_of_singleton() {
        let mut idx = IncrementalDuplicates::new(2, 3);
        idx.set(0, 0, true);
        assert_eq!(idx.duplicates_of(0), vec![0]);
        assert_eq!(idx.n_rows(), 2);
        assert_eq!(idx.n_cols(), 3);
        assert!(idx.row(0).get(0));
    }

    /// Batch-vs-incremental comparison with timings normalized (the
    /// incremental report never spends wall-clock).
    fn assert_matches_batch(inc: &IncrementalPipeline, graph: &TripartiteGraph, tag: &str) {
        let got = inc.report();
        let mut want = Pipeline::new(*inc.config()).run(graph);
        want.timings = StageTimings::default();
        assert_eq!(got, want, "{tag}");
    }

    fn edit_script() -> Vec<EdgeDelta> {
        vec![
            EdgeDelta::AddUser, // user 4
            EdgeDelta::AddRole, // role 5
            EdgeDelta::Assign { role: 5, user: 4 },
            EdgeDelta::Grant {
                role: 5,
                permission: 0,
            },
            EdgeDelta::Revoke { role: 0, user: 0 }, // R01 loses its only user
            EdgeDelta::Ungrant {
                role: 2,
                permission: 3,
            }, // R03 goes fully standalone
            EdgeDelta::AddPermission,               // permission 6
            EdgeDelta::Grant {
                role: 1,
                permission: 6,
            },
            EdgeDelta::Assign { role: 1, user: 4 },
            EdgeDelta::Revoke { role: 3, user: 1 },
            // Make roles 1 and 3 diverge and re-converge on the user side.
            EdgeDelta::Revoke { role: 3, user: 2 },
            EdgeDelta::Assign { role: 3, user: 1 },
            EdgeDelta::Assign { role: 3, user: 2 },
        ]
    }

    #[test]
    fn incremental_pipeline_matches_batch_after_every_event() {
        for include_disjoint in [false, true] {
            for include_empty in [false, true] {
                let config = DetectionConfig {
                    similarity: SimilarityConfig {
                        include_disjoint,
                        ..SimilarityConfig::default()
                    },
                    include_empty_duplicates: include_empty,
                    ..DetectionConfig::default()
                };
                let graph = TripartiteGraph::figure1_example();
                let mut inc = IncrementalPipeline::new(&graph, config);
                let mut g = graph.clone();
                assert_matches_batch(&inc, &g, "initial");
                for (k, delta) in edit_script().iter().enumerate() {
                    inc.apply(delta).unwrap();
                    delta.apply(&mut g).unwrap();
                    assert_matches_batch(
                        &inc,
                        &g,
                        &format!("event {k} disjoint={include_disjoint} empty={include_empty}"),
                    );
                }
                assert_eq!(inc.graph(), &g);
            }
        }
    }

    #[test]
    fn noop_flips_and_errors_leave_state_consistent() {
        let graph = TripartiteGraph::figure1_example();
        let config = DetectionConfig::default();
        let mut inc = IncrementalPipeline::new(&graph, config);
        // No-op: the edge already exists.
        assert!(!inc.apply(&EdgeDelta::Assign { role: 0, user: 0 }).unwrap());
        // Error: unknown role id.
        assert!(inc.apply(&EdgeDelta::Assign { role: 99, user: 0 }).is_err());
        assert_matches_batch(&inc, &graph, "after no-op and error");
    }

    #[test]
    fn apply_batch_reports_finding_deltas() {
        let graph = TripartiteGraph::figure1_example();
        let mut inc = IncrementalPipeline::new(&graph, DetectionConfig::default());
        let delta = inc.apply_batch(&[]).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.change_count(), 0);
        // R01 loses its only user: U01 becomes standalone (T1 added),
        // R01 stops being a single-user role (T3 removed) and becomes
        // userless (T2 added).
        let delta = inc
            .apply_batch(&[EdgeDelta::Revoke { role: 0, user: 0 }])
            .unwrap();
        assert_eq!(delta.standalone_users.added, vec![0]);
        assert_eq!(delta.single_user_roles.removed, vec![0]);
        assert_eq!(delta.userless_roles.added, vec![0]);
        assert!(delta.same_user_groups.is_empty());
        assert!(!delta.is_empty());
        // Round-trip: ReportDelta::between of identical reports is empty.
        let r = inc.report();
        assert!(ReportDelta::between(&r, &r).is_empty());
        let json = serde_json::to_string(&delta).unwrap();
        let back: ReportDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(delta, back);
    }

    #[test]
    fn identical_streams_produce_identical_state() {
        let graph = TripartiteGraph::figure1_example();
        let config = DetectionConfig {
            similarity: SimilarityConfig {
                include_disjoint: true,
                ..SimilarityConfig::default()
            },
            ..DetectionConfig::default()
        };
        let mut a = IncrementalPipeline::new(&graph, config);
        let mut b = IncrementalPipeline::new(&graph, config);
        let script = edit_script();
        a.apply_all(&script).unwrap();
        b.apply_all(&script).unwrap();
        assert_eq!(a, b, "same stream must converge to identical state");
    }

    #[test]
    fn skip_similarity_maintains_no_pair_state() {
        let graph = TripartiteGraph::figure1_example();
        let config = DetectionConfig {
            skip_similarity: true,
            ..DetectionConfig::default()
        };
        let mut inc = IncrementalPipeline::new(&graph, config);
        assert!(inc.users.similar.is_none());
        let mut g = graph.clone();
        for delta in edit_script() {
            inc.apply(&delta).unwrap();
            delta.apply(&mut g).unwrap();
        }
        assert_matches_batch(&inc, &g, "skip_similarity");
        assert!(inc.report().similar_user_pairs.is_empty());
    }
}
