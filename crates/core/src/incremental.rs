//! Incremental duplicate tracking under edge churn.
//!
//! The batch pipeline recomputes everything per run; between runs an IAM
//! system keeps mutating. This maintains the T4 state — which roles have
//! identical rows — *online*: each `set` updates one row's signature
//! bucket in `O(row words + log bucket)`, so the duplicate groups are
//! always current without rescanning the matrix. It is the engine a
//! "detect on every change" deployment would embed, and the batch
//! algorithms serve as its test oracle.

use std::collections::{BTreeMap, BTreeSet};

use rolediet_matrix::{hash_words, BitVec, CsrMatrix, RowMatrix, RowSignature};

/// Online index of duplicate rows (roles with identical user or
/// permission sets).
///
/// # Examples
///
/// ```
/// use rolediet_core::incremental::IncrementalDuplicates;
///
/// let mut idx = IncrementalDuplicates::new(3, 4);
/// idx.set(0, 1, true);
/// idx.set(2, 1, true);
/// assert_eq!(idx.groups(), vec![vec![0, 2]]);
/// idx.set(2, 3, true); // rows diverge again
/// assert!(idx.groups().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalDuplicates {
    rows: Vec<BitVec>,
    signatures: Vec<RowSignature>,
    buckets: BTreeMap<RowSignature, BTreeSet<usize>>,
    /// Report groups of all-zero rows too? Default `false`, matching the
    /// batch pipeline's semantics (empty roles are T2 findings).
    include_empty: bool,
}

impl IncrementalDuplicates {
    /// Creates an index of `rows` all-zero rows of width `cols`.
    pub fn new(rows: usize, cols: usize) -> Self {
        let empty = BitVec::new(cols);
        let sig = hash_words(empty.as_words());
        let mut buckets: BTreeMap<RowSignature, BTreeSet<usize>> = BTreeMap::new();
        buckets.insert(sig, (0..rows).collect());
        IncrementalDuplicates {
            rows: vec![empty; rows],
            signatures: vec![sig; rows],
            buckets,
            include_empty: false,
        }
    }

    /// Builds the index from an existing matrix.
    pub fn from_matrix(matrix: &CsrMatrix) -> Self {
        let mut idx = IncrementalDuplicates::new(matrix.rows(), matrix.cols());
        for r in 0..matrix.rows() {
            for &c in matrix.row(r) {
                idx.set(r, c as usize, true);
            }
        }
        idx
    }

    /// Whether all-empty rows are reported as a duplicate group.
    pub fn include_empty(mut self, yes: bool) -> Self {
        self.include_empty = yes;
        self
    }

    /// Number of tracked rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Row width.
    pub fn n_cols(&self) -> usize {
        self.rows.first().map_or(0, BitVec::len)
    }

    /// Current contents of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.rows[r]
    }

    /// Sets cell `(row, col)`; updates the duplicate state. Returns
    /// `true` if the cell changed.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, row: usize, col: usize, value: bool) -> bool {
        if self.rows[row].get(col) == value {
            return false;
        }
        let old_sig = self.signatures[row];
        let bucket = self
            .buckets
            .get_mut(&old_sig)
            .expect("row is always registered in its bucket");
        bucket.remove(&row);
        if bucket.is_empty() {
            self.buckets.remove(&old_sig);
        }
        self.rows[row].set(col, value);
        let new_sig = hash_words(self.rows[row].as_words());
        self.signatures[row] = new_sig;
        self.buckets.entry(new_sig).or_default().insert(row);
        true
    }

    /// The rows currently identical to `row` (including itself), in
    /// ascending order — verified bit-for-bit, so hash collisions cannot
    /// leak through.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn duplicates_of(&self, row: usize) -> Vec<usize> {
        let sig = self.signatures[row];
        self.buckets[&sig]
            .iter()
            .copied()
            .filter(|&r| self.rows[r] == self.rows[row])
            .collect()
    }

    /// All current duplicate groups (≥ 2 members), sorted by first
    /// member; empty-row groups filtered per [`include_empty`].
    ///
    /// [`include_empty`]: Self::include_empty
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for members in self.buckets.values() {
            if members.len() < 2 {
                continue;
            }
            // Verify within the bucket (collision-safe): partition by
            // actual content.
            let mut remaining: Vec<usize> = members.iter().copied().collect();
            while remaining.len() >= 2 {
                let pivot = remaining[0];
                let (same, diff): (Vec<usize>, Vec<usize>) = remaining
                    .into_iter()
                    .partition(|&r| self.rows[r] == self.rows[pivot]);
                if same.len() >= 2 && (self.include_empty || !self.rows[pivot].is_zero()) {
                    out.push(same);
                }
                remaining = diff;
            }
        }
        out.sort_unstable_by_key(|g| g[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cooccur::same_groups;

    #[test]
    fn tracks_convergence_and_divergence() {
        let mut idx = IncrementalDuplicates::new(3, 5);
        assert!(idx.groups().is_empty(), "empty rows excluded by default");
        assert!(idx.set(0, 2, true));
        assert!(!idx.set(0, 2, true), "idempotent");
        assert!(idx.set(1, 2, true));
        assert_eq!(idx.groups(), vec![vec![0, 1]]);
        assert_eq!(idx.duplicates_of(0), vec![0, 1]);
        assert!(idx.set(1, 4, true));
        assert!(idx.groups().is_empty());
        assert!(idx.set(1, 4, false));
        assert_eq!(idx.groups(), vec![vec![0, 1]]);
    }

    #[test]
    fn include_empty_matches_batch_semantics() {
        let idx = IncrementalDuplicates::new(3, 4);
        assert!(idx.groups().is_empty());
        let idx = IncrementalDuplicates::new(3, 4).include_empty(true);
        assert_eq!(idx.groups(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn from_matrix_matches_batch_groups() {
        let m = CsrMatrix::from_rows_of_indices(
            5,
            6,
            &[vec![0, 1], vec![2], vec![0, 1], vec![], vec![2]],
        )
        .unwrap();
        let idx = IncrementalDuplicates::from_matrix(&m);
        assert_eq!(
            idx.groups(),
            same_groups(&m)
                .into_iter()
                .filter(|g| m.row_norm(g[0]) > 0)
                .collect::<Vec<_>>()
        );
        assert_eq!(idx.groups(), vec![vec![0, 2], vec![1, 4]]);
    }

    #[test]
    fn random_edit_sequences_agree_with_batch_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let (rows, cols) = (12usize, 10usize);
        let mut idx = IncrementalDuplicates::new(rows, cols);
        let mut reference: Vec<Vec<usize>> = vec![Vec::new(); rows];
        for step in 0..500 {
            let r = rng.gen_range(0..rows);
            let c = rng.gen_range(0..cols);
            let v = rng.gen_bool(0.55);
            idx.set(r, c, v);
            if v {
                if !reference[r].contains(&c) {
                    reference[r].push(c);
                }
            } else {
                reference[r].retain(|&x| x != c);
            }
            if step % 25 == 0 {
                let m = CsrMatrix::from_rows_of_indices(rows, cols, &reference).unwrap();
                let batch: Vec<Vec<usize>> = same_groups(&m)
                    .into_iter()
                    .filter(|g| m.row_norm(g[0]) > 0)
                    .collect();
                assert_eq!(idx.groups(), batch, "step {step}");
            }
        }
    }

    #[test]
    fn duplicates_of_singleton() {
        let mut idx = IncrementalDuplicates::new(2, 3);
        idx.set(0, 0, true);
        assert_eq!(idx.duplicates_of(0), vec![0]);
        assert_eq!(idx.n_rows(), 2);
        assert_eq!(idx.n_cols(), 3);
        assert!(idx.row(0).get(0));
    }
}
