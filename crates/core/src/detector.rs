//! Linear-time detectors for inefficiency types T1–T3 (Section III-B).
//!
//! All three cheap types fall out of the row and column sums of RUAM and
//! RPAM, computed in one pass each:
//!
//! * **standalone users/permissions** — zero column sums in RUAM/RPAM;
//! * **standalone roles** — zero row sum in *both* matrices;
//! * **roles without users / without permissions** — zero row sum in one
//!   matrix, non-zero in the other;
//! * **single-link roles** — row sum exactly 1.

use serde::{Deserialize, Serialize};

use rolediet_matrix::RowMatrix;

/// Findings of the linear-time detectors, as dense indices.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeFindings {
    /// Users (RUAM columns) in no role.
    pub standalone_users: Vec<usize>,
    /// Permissions (RPAM columns) in no role.
    pub standalone_permissions: Vec<usize>,
    /// Roles with zero users *and* zero permissions.
    pub standalone_roles: Vec<usize>,
    /// Roles with zero users but at least one permission.
    pub userless_roles: Vec<usize>,
    /// Roles with zero permissions but at least one user.
    pub permless_roles: Vec<usize>,
    /// Roles with exactly one user.
    pub single_user_roles: Vec<usize>,
    /// Roles with exactly one permission.
    pub single_permission_roles: Vec<usize>,
}

/// Runs the T1–T3 detectors over the two assignment matrices.
///
/// # Panics
///
/// Panics if the matrices disagree on the number of roles (rows).
///
/// # Examples
///
/// ```
/// use rolediet_core::detector::detect_degrees;
/// use rolediet_model::TripartiteGraph;
///
/// let g = TripartiteGraph::figure1_example();
/// let f = detect_degrees(&g.ruam_sparse(), &g.rpam_sparse());
/// assert_eq!(f.standalone_permissions, vec![0]); // P01
/// assert_eq!(f.userless_roles, vec![2]);         // R03
/// assert_eq!(f.permless_roles, vec![1]);         // R02
/// assert_eq!(f.single_user_roles, vec![0, 4]);   // R01, R05
/// ```
pub fn detect_degrees<R: RowMatrix + Sync, P: RowMatrix + Sync>(
    ruam: &R,
    rpam: &P,
) -> DegreeFindings {
    detect_degrees_with(ruam, rpam, 1)
}

/// [`detect_degrees`] with the row/column-sum passes split over `threads`
/// workers (via [`rolediet_matrix::parallel`]). Findings are identical to
/// the sequential run for every thread count.
///
/// # Panics
///
/// Panics if the matrices disagree on the number of roles (rows).
pub fn detect_degrees_with<R: RowMatrix + Sync, P: RowMatrix + Sync>(
    ruam: &R,
    rpam: &P,
    threads: usize,
) -> DegreeFindings {
    assert_eq!(
        ruam.rows(),
        rpam.rows(),
        "RUAM and RPAM must describe the same roles"
    );
    let mut f = DegreeFindings {
        standalone_users: zero_positions(&ruam.col_sums_with(threads)),
        standalone_permissions: zero_positions(&rpam.col_sums_with(threads)),
        ..DegreeFindings::default()
    };
    let user_sums = ruam.row_sums_with(threads);
    let perm_sums = rpam.row_sums_with(threads);
    for (r, (&us, &ps)) in user_sums.iter().zip(&perm_sums).enumerate() {
        match (us, ps) {
            (0, 0) => f.standalone_roles.push(r),
            (0, _) => f.userless_roles.push(r),
            (_, 0) => f.permless_roles.push(r),
            _ => {}
        }
        if us == 1 {
            f.single_user_roles.push(r);
        }
        if ps == 1 {
            f.single_permission_roles.push(r);
        }
    }
    f
}

fn zero_positions(sums: &[usize]) -> Vec<usize> {
    sums.iter()
        .enumerate()
        .filter(|&(_, &s)| s == 0)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rolediet_matrix::CsrMatrix;
    use rolediet_model::TripartiteGraph;

    #[test]
    fn figure1_findings_match_paper_narrative() {
        let g = TripartiteGraph::figure1_example();
        let f = detect_degrees(&g.ruam_sparse(), &g.rpam_sparse());
        // "The P01 permission is an example of such a node."
        assert_eq!(f.standalone_permissions, vec![0]);
        assert!(f.standalone_users.is_empty());
        assert!(f.standalone_roles.is_empty());
        // "role R02 is not connected to any permission node, and role R03
        //  is not linked to any user node."
        assert_eq!(f.userless_roles, vec![2]);
        assert_eq!(f.permless_roles, vec![1]);
        // "the R01 and R05 roles have a single user assigned."
        assert_eq!(f.single_user_roles, vec![0, 4]);
        // R03 has a single permission (P04).
        assert_eq!(f.single_permission_roles, vec![2]);
    }

    #[test]
    fn dense_and_sparse_agree() {
        let g = TripartiteGraph::figure1_example();
        let sparse = detect_degrees(&g.ruam_sparse(), &g.rpam_sparse());
        let dense = detect_degrees(&g.ruam_dense(), &g.rpam_dense());
        assert_eq!(sparse, dense);
    }

    #[test]
    fn standalone_role_needs_both_sides_empty() {
        // Role 0: fully standalone. Role 1: userless. Role 2: permless.
        let ruam = CsrMatrix::from_rows_of_indices(3, 2, &[vec![], vec![], vec![0]]).unwrap();
        let rpam = CsrMatrix::from_rows_of_indices(3, 2, &[vec![], vec![1], vec![]]).unwrap();
        let f = detect_degrees(&ruam, &rpam);
        assert_eq!(f.standalone_roles, vec![0]);
        assert_eq!(f.userless_roles, vec![1]);
        assert_eq!(f.permless_roles, vec![2]);
        // Standalone roles are not double-reported as userless/permless.
        assert!(!f.userless_roles.contains(&0));
        assert!(!f.permless_roles.contains(&0));
    }

    #[test]
    fn single_link_can_overlap_with_t2() {
        // A role with 1 user and 0 permissions is both T3-user and
        // T2-permission (the taxonomy types are not exclusive).
        let ruam = CsrMatrix::from_rows_of_indices(1, 2, &[vec![0]]).unwrap();
        let rpam = CsrMatrix::from_rows_of_indices(1, 2, &[vec![]]).unwrap();
        let f = detect_degrees(&ruam, &rpam);
        assert_eq!(f.single_user_roles, vec![0]);
        assert_eq!(f.permless_roles, vec![0]);
    }

    #[test]
    fn parallel_degrees_match_sequential() {
        let g = TripartiteGraph::figure1_example();
        let seq = detect_degrees(&g.ruam_sparse(), &g.rpam_sparse());
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                detect_degrees_with(&g.ruam_sparse(), &g.rpam_sparse(), threads),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_matrices() {
        let ruam = CsrMatrix::zeros(0, 0);
        let rpam = CsrMatrix::zeros(0, 0);
        let f = detect_degrees(&ruam, &rpam);
        assert_eq!(f, DegreeFindings::default());
    }

    #[test]
    #[should_panic(expected = "same roles")]
    fn mismatched_role_counts_panic() {
        let ruam = CsrMatrix::zeros(2, 1);
        let rpam = CsrMatrix::zeros(3, 1);
        detect_degrees(&ruam, &rpam);
    }
}
