//! Property-based tests for the matrix substrate.
//!
//! These pin the algebraic identities the detection algorithms rely on:
//! Hamming metric axioms, the `|Rⁱ| + |Rʲ| − 2gⁱʲ = Hamming(i,j)` identity
//! at the heart of the custom algorithm, dense/sparse equivalence, and
//! signature soundness.

use proptest::collection::vec;
use proptest::prelude::*;

use rolediet_matrix::ops::{for_each_cooccurring_pair, gram_matrix};
use rolediet_matrix::{BitMatrix, BitVec, CsrMatrix, RowMatrix, SignatureIndex};

/// Strategy: a row as a set of column indices below `cols`.
fn row_strategy(cols: usize) -> impl Strategy<Value = Vec<usize>> {
    vec(0..cols, 0..=cols.min(24))
}

/// Strategy: (rows, cols, row index lists).
fn matrix_strategy() -> impl Strategy<Value = (usize, usize, Vec<Vec<usize>>)> {
    (1usize..12, 1usize..150).prop_flat_map(|(rows, cols)| {
        vec(row_strategy(cols), rows).prop_map(move |data| (rows, cols, data))
    })
}

proptest! {
    #[test]
    fn bitvec_roundtrip_through_indices((_, cols, data) in matrix_strategy()) {
        for row in &data {
            let v = BitVec::from_indices(cols, row).unwrap();
            let mut sorted = row.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(v.to_indices(), sorted);
            prop_assert_eq!(v.count_ones(), v.to_indices().len());
        }
    }

    #[test]
    fn hamming_metric_axioms(
        a in row_strategy(100),
        b in row_strategy(100),
        c in row_strategy(100),
    ) {
        let va = BitVec::from_indices(100, &a).unwrap();
        let vb = BitVec::from_indices(100, &b).unwrap();
        let vc = BitVec::from_indices(100, &c).unwrap();
        let dab = va.hamming(&vb).unwrap();
        let dba = vb.hamming(&va).unwrap();
        let dac = va.hamming(&vc).unwrap();
        let dcb = vc.hamming(&vb).unwrap();
        // symmetry
        prop_assert_eq!(dab, dba);
        // identity of indiscernibles
        prop_assert_eq!(va.hamming(&va).unwrap(), 0);
        prop_assert_eq!(dab == 0, va == vb);
        // triangle inequality
        prop_assert!(dab <= dac + dcb);
    }

    #[test]
    fn norm_dot_hamming_identity(
        a in row_strategy(100),
        b in row_strategy(100),
    ) {
        // The identity the custom algorithm is built on (Section III-C):
        // Hamming(i,j) = |Ri| + |Rj| - 2 g_ij.
        let va = BitVec::from_indices(100, &a).unwrap();
        let vb = BitVec::from_indices(100, &b).unwrap();
        let g = va.intersection_count(&vb).unwrap();
        prop_assert_eq!(
            va.hamming(&vb).unwrap(),
            va.count_ones() + vb.count_ones() - 2 * g
        );
        // Same-users indicator: |Ri| = g = |Rj|  <=>  rows equal.
        let same = va.count_ones() == g && vb.count_ones() == g;
        prop_assert_eq!(same, va == vb);
    }

    #[test]
    fn union_intersection_inclusion_exclusion(
        a in row_strategy(80),
        b in row_strategy(80),
    ) {
        let va = BitVec::from_indices(80, &a).unwrap();
        let vb = BitVec::from_indices(80, &b).unwrap();
        let union = va.union_count(&vb).unwrap();
        let inter = va.intersection_count(&vb).unwrap();
        prop_assert_eq!(union + inter, va.count_ones() + vb.count_ones());
    }

    #[test]
    fn dense_sparse_equivalence((rows, cols, data) in matrix_strategy()) {
        let d = BitMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let s = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        prop_assert_eq!(s.validate(), Ok(()));
        prop_assert_eq!(CsrMatrix::from_dense(&d), s.clone());
        prop_assert_eq!(s.to_dense(), d.clone());
        prop_assert_eq!(d.col_sums(), s.col_sums());
        prop_assert_eq!(d.nnz(), s.nnz());
        for i in 0..rows {
            prop_assert_eq!(d.row_norm(i), s.row_norm(i));
            prop_assert_eq!(d.row_signature(i), s.row_signature(i));
            prop_assert_eq!(d.row_indices(i), s.row_indices(i));
            for j in 0..rows {
                prop_assert_eq!(d.row_hamming(i, j), s.row_hamming(i, j));
                prop_assert_eq!(d.row_dot(i, j), s.row_dot(i, j));
                prop_assert_eq!(d.rows_equal(i, j), s.rows_equal(i, j));
            }
        }
    }

    #[test]
    fn transpose_involution_and_sums((rows, cols, data) in matrix_strategy()) {
        let s = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let t = s.transpose();
        prop_assert_eq!(t.validate(), Ok(()));
        prop_assert_eq!(t.transpose(), s.clone());
        prop_assert_eq!(t.row_sums(), s.col_sums());
        prop_assert_eq!(t.col_sums(), s.row_sums());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i/j are matrix coordinates
    fn streamed_pairs_match_gram((rows, cols, data) in matrix_strategy()) {
        let s = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let t = s.transpose();
        let gram = gram_matrix(&s);
        let mut seen = std::collections::HashMap::new();
        for_each_cooccurring_pair(&s, &t, |i, j, g| {
            assert!(i < j);
            seen.insert((i, j), g);
        });
        for i in 0..rows {
            prop_assert_eq!(gram[i][i], s.row_norm(i));
            for j in (i + 1)..rows {
                prop_assert_eq!(seen.get(&(i, j)).copied().unwrap_or(0), gram[i][j]);
            }
        }
    }

    #[test]
    fn signature_groups_are_exactly_equal_rows((rows, cols, data) in matrix_strategy()) {
        let s = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let groups = SignatureIndex::build(&s).groups_verified(&s);
        // Every reported group member pair is bit-equal.
        for g in &groups {
            prop_assert!(g.len() >= 2);
            for w in g.windows(2) {
                prop_assert!(s.rows_equal(w[0], w[1]));
            }
        }
        // Every equal pair is covered by some group.
        let mut group_of = vec![usize::MAX; rows];
        for (gi, g) in groups.iter().enumerate() {
            for &r in g {
                group_of[r] = gi;
            }
        }
        for i in 0..rows {
            for j in (i + 1)..rows {
                if s.rows_equal(i, j) {
                    prop_assert_eq!(group_of[i], group_of[j]);
                    prop_assert_ne!(group_of[i], usize::MAX);
                }
            }
        }
    }

    #[test]
    fn two_pass_build_matches_reference_for_every_thread_count(
        (rows, cols, mut data) in matrix_strategy(),
    ) {
        // Include an empty row and a duplicate of row 0 so every case
        // covers the degenerate shapes.
        data.push(Vec::new());
        data.push(data[0].clone());
        let rows = rows + 2;
        let reference = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        // The two-pass builder requires strictly increasing columns per
        // row — feed it the normalized rows of the reference.
        for threads in [1usize, 2, 4, 8] {
            let built = CsrMatrix::from_row_iter_two_pass(rows, cols, threads, |i| {
                reference.row(i).iter().copied()
            });
            prop_assert_eq!(built.validate(), Ok(()));
            prop_assert_eq!(&built, &reference, "threads={}", threads);
        }
    }

    #[test]
    fn packed_bounded_hamming_agrees_with_row_hamming(
        (rows, cols, mut data) in matrix_strategy(),
        bound in 0usize..8,
    ) {
        // Append an empty row and a duplicate of row 0 so every case
        // covers the engine's degenerate shapes; `matrix_strategy`'s
        // 1..150 column range covers widths not divisible by 64.
        data.push(Vec::new());
        data.push(data[0].clone());
        let rows = rows + 2;
        let m = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        for packed in [
            rolediet_matrix::PackedRows::packed_from_matrix(&m, 3),
            rolediet_matrix::PackedRows::sparse_from_matrix(&m, 3),
        ] {
            // The kernel agrees with the scalar distance, including the
            // `None` <=> distance > bound direction.
            for i in 0..rows {
                prop_assert_eq!(packed.row_norm(i), m.row_norm(i));
                for j in 0..rows {
                    let d = m.row_hamming(i, j);
                    let expected = if d <= bound { Some(d) } else { None };
                    prop_assert_eq!(
                        packed.bounded_hamming(i, j, bound),
                        expected,
                        "i={} j={} bound={} packed={}", i, j, bound, packed.is_packed()
                    );
                }
            }
            // The batched kernels match brute force, with and without
            // norm pruning, at every thread count.
            let brute_queries: Vec<Vec<usize>> = (0..rows)
                .map(|i| (0..rows).filter(|&j| m.row_hamming(i, j) <= bound).collect())
                .collect();
            let mut brute_pairs = Vec::new();
            for i in 0..rows {
                for j in (i + 1)..rows {
                    let d = m.row_hamming(i, j);
                    if d <= bound {
                        brute_pairs.push((i, j, d));
                    }
                }
            }
            for threads in [1usize, 2, 4, 8] {
                prop_assert_eq!(
                    &packed.range_queries_within(bound, threads),
                    &brute_queries,
                    "threads={}", threads
                );
                prop_assert_eq!(
                    &packed.range_queries_within_no_prune(bound, threads),
                    &brute_queries,
                    "no-prune threads={}", threads
                );
                prop_assert_eq!(
                    &packed.pairs_within(bound, threads),
                    &brute_pairs,
                    "pairs threads={}", threads
                );
            }
        }
    }

    #[test]
    fn sharded_engine_matches_flat_engine_under_tiny_budgets(
        (rows, cols, mut data) in matrix_strategy(),
        bound in 0usize..6,
    ) {
        // Degenerate shapes on purpose: an empty row, a duplicate of
        // row 0, and `matrix_strategy`'s 1..150 column range covering
        // widths % 64 != 0.
        data.push(Vec::new());
        data.push(data[0].clone());
        let rows = rows + 2;
        let m = CsrMatrix::from_rows_of_indices(rows, cols, &data).unwrap();
        let flat = rolediet_matrix::PackedRows::from_matrix(&m, 1);
        let expected_pairs = flat.pairs_within(bound, 1);
        let expected_queries = flat.range_queries_within(bound, 1);
        // A per-row budget so tiny the plan is forced to cut one shard
        // per row when there are 3+ rows — the most adversarial
        // shard count — plus a mid-size budget and the unbounded plan.
        for budget in [1usize, 600, 0] {
            for threads in [1usize, 2, 4, 8] {
                let sharded = rolediet_matrix::PackedShards::new(&m, budget, threads);
                if budget == 1 && rows >= 3 {
                    prop_assert!(
                        sharded.n_shards() >= 3,
                        "budget=1 rows={} must force >=3 shards, got {}",
                        rows,
                        sharded.n_shards()
                    );
                }
                prop_assert_eq!(
                    &sharded.pairs_within(bound),
                    &expected_pairs,
                    "pairs budget={} threads={} shards={}",
                    budget, threads, sharded.n_shards()
                );
                prop_assert_eq!(
                    &sharded.range_queries_within(bound),
                    &expected_queries,
                    "queries budget={} threads={} shards={}",
                    budget, threads, sharded.n_shards()
                );
            }
        }
    }

    #[test]
    fn subset_difference_consistency(
        a in row_strategy(60),
        b in row_strategy(60),
    ) {
        let va = BitVec::from_indices(60, &a).unwrap();
        let vb = BitVec::from_indices(60, &b).unwrap();
        let mut diff = va.clone();
        diff.difference_with(&vb).unwrap();
        prop_assert!(diff.is_subset_of(&va).unwrap());
        prop_assert_eq!(diff.intersection_count(&vb).unwrap(), 0);
        prop_assert_eq!(
            diff.count_ones(),
            va.count_ones() - va.intersection_count(&vb).unwrap()
        );
    }
}
