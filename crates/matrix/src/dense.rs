//! Dense bit matrices with zero-copy row views.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bitvec::{tail_mask, words_for, BitVec, BITS};
use crate::error::MatrixError;
use crate::signature::{hash_words, RowSignature};
use crate::traits::RowMatrix;
use crate::Result;

/// A dense binary matrix stored row-major as packed `u64` words.
///
/// Each row occupies `ceil(cols / 64)` words; the trailing bits of the last
/// word of every row are kept zero (same invariant as [`BitVec`]), so rows
/// can be compared word-by-word.
///
/// This is the representation used for the paper's synthetic experiments
/// (Figures 2 and 3): a 10,000 × 10,000 RUAM costs ~12.5 MB and a full
/// pairwise Hamming scan stays cache-friendly.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::{BitMatrix, RowMatrix};
///
/// let mut m = BitMatrix::zeros(2, 3);
/// m.set(0, 1, true);
/// m.set(1, 1, true);
/// assert_eq!(m.row_hamming(0, 1), 0);
/// m.set(1, 2, true);
/// assert_eq!(m.row_hamming(0, 1), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = words_for(cols);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Builds a matrix from per-row column-index lists.
    ///
    /// Indices may be unsorted and may repeat.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `row_indices.len() !=
    /// rows`, or [`MatrixError::IndexOutOfBounds`] if any column index is
    /// `>= cols`.
    pub fn from_rows_of_indices(
        rows: usize,
        cols: usize,
        row_indices: &[Vec<usize>],
    ) -> Result<Self> {
        if row_indices.len() != rows {
            return Err(MatrixError::DimensionMismatch {
                expected: rows,
                actual: row_indices.len(),
                what: "row count",
            });
        }
        let mut m = BitMatrix::zeros(rows, cols);
        for (i, cols_of_row) in row_indices.iter().enumerate() {
            for &j in cols_of_row {
                m.try_set(i, j, true)?;
            }
        }
        Ok(m)
    }

    /// Builds a matrix whose rows are copies of the given bit vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if any row length differs
    /// from `cols`.
    pub fn from_bitvec_rows(cols: usize, rows: &[BitVec]) -> Result<Self> {
        let mut m = BitMatrix::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(MatrixError::DimensionMismatch {
                    expected: cols,
                    actual: r.len(),
                    what: "row length",
                });
            }
            let start = i * m.words_per_row;
            m.data[start..start + m.words_per_row].copy_from_slice(r.as_words());
        }
        Ok(m)
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// Returns the bit at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows, "row index {row} out of bounds");
        assert!(col < self.cols, "column index {col} out of bounds");
        let w = row * self.words_per_row + col / BITS;
        self.data[w] & (1u64 << (col % BITS)) != 0
    }

    /// Sets the bit at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(row < self.rows, "row index {row} out of bounds");
        assert!(col < self.cols, "column index {col} out of bounds");
        let w = row * self.words_per_row + col / BITS;
        let bit = 1u64 << (col % BITS);
        if value {
            self.data[w] |= bit;
        } else {
            self.data[w] &= !bit;
        }
    }

    /// Fallible variant of [`set`](BitMatrix::set).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] for a bad row or column.
    pub fn try_set(&mut self, row: usize, col: usize, value: bool) -> Result<()> {
        if row >= self.rows {
            return Err(MatrixError::IndexOutOfBounds {
                index: row,
                bound: self.rows,
                axis: "row",
            });
        }
        if col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                index: col,
                bound: self.cols,
                axis: "column",
            });
        }
        self.set(row, col, value);
        Ok(())
    }

    /// Zero-copy view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> RowRef<'_> {
        assert!(i < self.rows, "row index {i} out of bounds");
        let start = i * self.words_per_row;
        RowRef {
            words: &self.data[start..start + self.words_per_row],
            cols: self.cols,
        }
    }

    /// Iterates over all rows as [`RowRef`] views.
    pub fn iter_rows(&self) -> impl Iterator<Item = RowRef<'_>> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Overwrites row `i` with the contents of `row`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] for a bad row index or
    /// [`MatrixError::DimensionMismatch`] if `row.len() != n_cols()`.
    pub fn set_row(&mut self, i: usize, row: &BitVec) -> Result<()> {
        if i >= self.rows {
            return Err(MatrixError::IndexOutOfBounds {
                index: i,
                bound: self.rows,
                axis: "row",
            });
        }
        if row.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                expected: self.cols,
                actual: row.len(),
                what: "row length",
            });
        }
        let start = i * self.words_per_row;
        self.data[start..start + self.words_per_row].copy_from_slice(row.as_words());
        Ok(())
    }

    /// Transposes the matrix (rows become columns).
    ///
    /// For RUAM this yields the user→roles incidence — the *inverted index*
    /// the co-occurrence algorithm walks.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for j in row.iter_ones() {
                t.set(j, i, true);
            }
        }
        t
    }

    /// Memory footprint of the payload in bytes (excluding struct overhead).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u64>()
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BitMatrix({}x{}, nnz={})",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

impl RowMatrix for BitMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn row_norm(&self, i: usize) -> usize {
        self.row(i).count_ones()
    }

    fn row_hamming(&self, i: usize, j: usize) -> usize {
        self.row(i).hamming(self.row(j))
    }

    fn row_dot(&self, i: usize, j: usize) -> usize {
        self.row(i).dot(self.row(j))
    }

    fn rows_equal(&self, i: usize, j: usize) -> bool {
        self.row(i).words == self.row(j).words
    }

    fn row_indices(&self, i: usize) -> Vec<usize> {
        self.row(i).iter_ones().collect()
    }

    fn row_bitvec(&self, i: usize) -> BitVec {
        self.row(i).to_bitvec()
    }

    fn row_signature(&self, i: usize) -> RowSignature {
        hash_words(self.row(i).words)
    }

    fn col_sums(&self) -> Vec<usize> {
        let mut sums = vec![0usize; self.cols];
        for i in 0..self.rows {
            for j in self.row(i).iter_ones() {
                sums[j] += 1;
            }
        }
        sums
    }
}

/// A borrowed view of one [`BitMatrix`] row.
///
/// Provides the same read-only operations as [`BitVec`] without copying.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    words: &'a [u64],
    cols: usize,
}

impl<'a> RowRef<'a> {
    /// Number of bits in the row (the matrix column count).
    #[inline]
    pub fn len(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the row has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cols == 0
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.cols, "bit index {index} out of bounds");
        self.words[index / BITS] & (1u64 << (index % BITS)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another row of the same width.
    ///
    /// # Panics
    ///
    /// Panics if the rows have different widths (rows of one matrix never
    /// do).
    pub fn hamming(&self, other: RowRef<'_>) -> usize {
        assert_eq!(self.cols, other.cols, "row width mismatch");
        self.words
            .iter()
            .zip(other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Co-occurrence count (`AND` popcount) with another row.
    ///
    /// # Panics
    ///
    /// Panics if the rows have different widths.
    pub fn dot(&self, other: RowRef<'_>) -> usize {
        assert_eq!(self.cols, other.cols, "row width mismatch");
        self.words
            .iter()
            .zip(other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over set-bit indices in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + 'a {
        let words = self.words;
        words.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors(if w == 0 { None } else { Some(w) }, |&cur| {
                let next = cur & (cur - 1);
                if next == 0 {
                    None
                } else {
                    Some(next)
                }
            })
            .map(move |cur| wi * BITS + cur.trailing_zeros() as usize)
        })
    }

    /// Copies the row into an owned [`BitVec`].
    pub fn to_bitvec(&self) -> BitVec {
        debug_assert!(
            self.words
                .last()
                .is_none_or(|&w| w & !tail_mask(self.cols) == 0),
            "tail invariant violated"
        );
        BitVec::from_words(self.cols, self.words.to_vec())
            .expect("matrix rows always satisfy the BitVec invariants")
    }

    /// The underlying words (tail bits zero).
    pub fn as_words(&self) -> &'a [u64] {
        self.words
    }
}

impl fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RowRef(len={}, ones={})", self.cols, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_payload() {
        let m = BitMatrix::zeros(3, 130);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 130);
        assert_eq!(m.payload_bytes(), 3 * 3 * 8);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn set_get_and_row_views() {
        let mut m = BitMatrix::zeros(2, 70);
        m.set(0, 0, true);
        m.set(0, 69, true);
        m.set(1, 69, true);
        assert!(m.get(0, 0));
        assert!(!m.get(1, 0));
        assert_eq!(m.row(0).count_ones(), 2);
        assert_eq!(m.row(0).hamming(m.row(1)), 1);
        assert_eq!(m.row(0).dot(m.row(1)), 1);
        assert_eq!(m.row(0).iter_ones().collect::<Vec<_>>(), vec![0, 69]);
        m.set(0, 0, false);
        assert!(!m.get(0, 0));
    }

    #[test]
    fn try_set_bounds() {
        let mut m = BitMatrix::zeros(2, 3);
        assert!(m.try_set(2, 0, true).is_err());
        assert!(m.try_set(0, 3, true).is_err());
        assert!(m.try_set(1, 2, true).is_ok());
    }

    #[test]
    fn from_rows_of_indices_validates() {
        assert!(BitMatrix::from_rows_of_indices(2, 3, &[vec![0]]).is_err());
        assert!(BitMatrix::from_rows_of_indices(1, 3, &[vec![3]]).is_err());
        let m = BitMatrix::from_rows_of_indices(2, 3, &[vec![2, 0], vec![]]).unwrap();
        assert_eq!(m.row_indices(0), vec![0, 2]);
        assert_eq!(m.row_norm(1), 0);
    }

    #[test]
    fn from_bitvec_rows_roundtrip() {
        let rows = vec![
            BitVec::from_indices(100, &[0, 64]).unwrap(),
            BitVec::from_indices(100, &[99]).unwrap(),
        ];
        let m = BitMatrix::from_bitvec_rows(100, &rows).unwrap();
        assert_eq!(m.row_bitvec(0), rows[0]);
        assert_eq!(m.row_bitvec(1), rows[1]);
        let bad = vec![BitVec::new(5)];
        assert!(BitMatrix::from_bitvec_rows(100, &bad).is_err());
    }

    #[test]
    fn set_row_replaces_contents() {
        let mut m = BitMatrix::zeros(2, 10);
        m.set(0, 1, true);
        let r = BitVec::from_indices(10, &[7, 8]).unwrap();
        m.set_row(0, &r).unwrap();
        assert_eq!(m.row_indices(0), vec![7, 8]);
        assert!(m.set_row(5, &r).is_err());
        assert!(m.set_row(0, &BitVec::new(3)).is_err());
    }

    #[test]
    fn transpose_is_involution() {
        let m = BitMatrix::from_rows_of_indices(3, 5, &[vec![0, 4], vec![1], vec![0, 2]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 5);
        assert_eq!(t.n_cols(), 3);
        assert!(t.get(4, 0));
        assert!(t.get(0, 2));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn col_sums_match_transpose_row_sums() {
        let m = BitMatrix::from_rows_of_indices(3, 4, &[vec![0, 1], vec![1, 2], vec![1]]).unwrap();
        assert_eq!(m.col_sums(), m.transpose().row_sums());
        assert_eq!(m.col_sums(), vec![1, 3, 1, 0]);
    }

    #[test]
    fn rows_equal_uses_word_compare() {
        let m =
            BitMatrix::from_rows_of_indices(3, 200, &[vec![0, 150], vec![0, 150], vec![0, 151]])
                .unwrap();
        assert!(m.rows_equal(0, 1));
        assert!(!m.rows_equal(0, 2));
        assert_eq!(m.row_signature(0), m.row_signature(1));
    }

    #[test]
    fn iter_rows_covers_all() {
        let m = BitMatrix::from_rows_of_indices(3, 4, &[vec![0], vec![1], vec![2, 3]]).unwrap();
        let norms: Vec<usize> = m.iter_rows().map(|r| r.count_ones()).collect();
        assert_eq!(norms, vec![1, 1, 2]);
    }

    #[test]
    fn debug_output() {
        let m = BitMatrix::from_rows_of_indices(2, 2, &[vec![0], vec![]]).unwrap();
        assert_eq!(format!("{m:?}"), "BitMatrix(2x2, nnz=1)");
    }

    #[test]
    fn serde_roundtrip() {
        let m = BitMatrix::from_rows_of_indices(2, 70, &[vec![0, 69], vec![5]]).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: BitMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        BitMatrix::zeros(1, 1).row(1);
    }
}
