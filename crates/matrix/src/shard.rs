//! Sharded, memory-budgeted driver for the bounded-distance engine.
//!
//! [`PackedRows`](crate::PackedRows) materializes the whole packed (or
//! sparse-copied) matrix plus its norm buckets in RAM — fine at realorg
//! scale (50 300 × 89 900), hopeless at the million-user scale the
//! roadmap targets. [`PackedShards`] runs the *same* exact T4/T5
//! distance plane under an explicit `memory_budget_bytes`:
//!
//! 1. **Deterministic shard plan.** Rows are counting-sorted by norm
//!    (stable, so ascending row index within equal norms) and cut into
//!    norm-contiguous shard blocks whose estimated resident footprint
//!    fits half the budget each (two shards are resident during a cross
//!    pass). The plan is a pure function of the input's norms, width,
//!    density and the budget — never of the thread count — so shard
//!    boundaries, and therefore every downstream result, are identical
//!    on any machine at any parallelism.
//! 2. **Tile passes.** `pairs_within` streams shard×shard tile passes:
//!    each shard is built on demand (through [`RowSubsetView`], a
//!    reordering row view of the backing matrix), paired against itself
//!    with the ordinary in-shard kernels, then against every later
//!    shard whose norm range overlaps its own band — so at most two
//!    shard blocks plus the output are resident at once, and
//!    out-of-band shard pairs are skipped without being built.
//! 3. **Norm-sorted block layout.** Because a shard's rows are stored
//!    in norm order, a band walk inside or across shards touches rows
//!    (and their packed words) sequentially in memory — the
//!    prefetch-friendly layout the flat engine cannot afford (its
//!    row-major order must match caller indices for the patchable
//!    incremental API). Cross-shard candidates reuse the shards'
//!    counting-sorted norm buckets directly, and distances go through
//!    [`PackedRows::bounded_hamming_cross`] so the early-exit kernels
//!    are shared with the flat engine.
//!
//! Every pair is found in exactly one pass (its shard pair), so a final
//! deterministic sort by `(i, j)` reproduces the flat engine's
//! lexicographic output bit-for-bit; `range_queries_within` is then
//! assembled from the sorted pairs in three ordered passes. With a
//! budget of `0` (unbounded) or a plan of one shard, the engine
//! delegates to [`PackedRows`] outright — byte-for-byte the single-shard
//! path of PR 5.

use crate::bitvec::{words_for, BitVec};
use crate::packed::PackedRows;
use crate::parallel;
use crate::signature::RowSignature;
use crate::traits::RowMatrix;

/// Estimated fixed per-row bookkeeping cost of a resident shard
/// (norm + bucket member + sparse span start/capacity), in bytes.
const ROW_OVERHEAD_BYTES: usize = 24;

/// A deterministic partition of a row set into norm-contiguous shard
/// blocks under a memory budget.
///
/// The plan depends only on the input matrix (its row norms, width and
/// density) and `memory_budget_bytes` — *not* on the thread count — so
/// a sharded computation is reproducible at any parallelism. See the
/// [module docs](self) for the full argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// All row indices, counting-sorted by norm (stable: ascending row
    /// index within equal norms).
    order: Vec<u32>,
    /// Shard boundaries into `order`: shard `s` covers
    /// `order[bounds[s]..bounds[s + 1]]`; `bounds.len() == n_shards + 1`.
    bounds: Vec<usize>,
    /// Whether the global density key chose the packed representation.
    /// Shared by every shard so cross-shard kernels never mix
    /// representations.
    packed: bool,
}

impl ShardPlan {
    /// Builds the plan for rows with the given `norms` over `cols`
    /// columns and `nnz` total set bits, under `memory_budget_bytes`
    /// (`0` = unbounded, one shard). The representation key is the same
    /// density rule [`PackedRows::from_matrix`] applies, evaluated
    /// globally so every shard agrees.
    pub fn new(norms: &[u32], cols: usize, nnz: usize, memory_budget_bytes: usize) -> ShardPlan {
        let rows = norms.len();
        let avg2 = (2 * nnz).checked_div(rows).unwrap_or(0);
        let packed = words_for(cols) <= avg2.max(8);

        // Counting-sort rows by norm — the same stable order the flat
        // engine's buckets use.
        let max_norm = norms.iter().copied().max().unwrap_or(0) as usize;
        let mut counts = vec![0usize; max_norm + 2];
        for &nm in norms {
            counts[nm as usize + 1] += 1;
        }
        for b in 0..=max_norm {
            counts[b + 1] += counts[b];
        }
        let mut order = vec![0u32; rows];
        for (i, &nm) in norms.iter().enumerate() {
            order[counts[nm as usize]] = i as u32;
            counts[nm as usize] += 1;
        }

        let row_cost = |norm: u32| -> usize {
            ROW_OVERHEAD_BYTES
                + if packed {
                    words_for(cols) * 8
                } else {
                    norm as usize * 4
                }
        };
        // Two shards are resident during a cross pass, so each gets half
        // the budget — but never less than the largest single row, so
        // every row fits in some shard.
        let cap = if memory_budget_bytes == 0 {
            usize::MAX
        } else {
            let max_row = norms.iter().map(|&nm| row_cost(nm)).max().unwrap_or(0);
            (memory_budget_bytes / 2).max(max_row)
        };

        let mut bounds = vec![0usize];
        let mut shard_bytes = 0usize;
        for (k, &r) in order.iter().enumerate() {
            let cost = row_cost(norms[r as usize]);
            if shard_bytes > 0 && shard_bytes.saturating_add(cost) > cap {
                bounds.push(k);
                shard_bytes = 0;
            }
            shard_bytes += cost;
        }
        bounds.push(rows);
        if rows == 0 {
            bounds = vec![0, 0];
        }
        ShardPlan {
            order,
            bounds,
            packed,
        }
    }

    /// Number of shard blocks (1 when the budget is unbounded or
    /// everything fits).
    pub fn n_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Global row indices of shard `s`, in norm order.
    ///
    /// # Panics
    ///
    /// Panics if `s >= n_shards()`.
    pub fn shard_rows(&self, s: usize) -> &[u32] {
        &self.order[self.bounds[s]..self.bounds[s + 1]]
    }

    /// Whether the global density key chose the packed representation.
    pub fn is_packed(&self) -> bool {
        self.packed
    }
}

/// A borrowed row-subset (and row-reorder) view of a [`RowMatrix`]:
/// view-row `i` is base-row `rows[i]`. The sharded engine uses it to
/// build each shard's [`PackedRows`] directly from the backing matrix in
/// norm order, without materializing an intermediate copy.
pub struct RowSubsetView<'m, M: ?Sized> {
    base: &'m M,
    rows: &'m [u32],
}

impl<'m, M: RowMatrix + ?Sized> RowSubsetView<'m, M> {
    /// Wraps `base`, exposing exactly the rows listed in `rows` (global
    /// indices, any order, duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if any listed row is out of range for `base`.
    pub fn new(base: &'m M, rows: &'m [u32]) -> Self {
        for &r in rows {
            assert!(
                (r as usize) < base.rows(),
                "row {r} out of range for {} base rows",
                base.rows()
            );
        }
        RowSubsetView { base, rows }
    }

    fn map(&self, i: usize) -> usize {
        self.rows[i] as usize
    }
}

impl<M: RowMatrix + ?Sized> RowMatrix for RowSubsetView<'_, M> {
    fn rows(&self) -> usize {
        self.rows.len()
    }

    fn cols(&self) -> usize {
        self.base.cols()
    }

    fn row_norm(&self, i: usize) -> usize {
        self.base.row_norm(self.map(i))
    }

    fn row_hamming(&self, i: usize, j: usize) -> usize {
        self.base.row_hamming(self.map(i), self.map(j))
    }

    fn row_dot(&self, i: usize, j: usize) -> usize {
        self.base.row_dot(self.map(i), self.map(j))
    }

    fn row_indices(&self, i: usize) -> Vec<usize> {
        self.base.row_indices(self.map(i))
    }

    fn row_bitvec(&self, i: usize) -> BitVec {
        self.base.row_bitvec(self.map(i))
    }

    fn row_signature(&self, i: usize) -> RowSignature {
        self.base.row_signature(self.map(i))
    }

    fn col_sums(&self) -> Vec<usize> {
        let mut sums = vec![0usize; self.base.cols()];
        for i in 0..self.rows.len() {
            for j in self.row_indices(i) {
                sums[j] += 1;
            }
        }
        sums
    }
}

/// One resident shard block: its engine plus the global indices (in
/// norm order) its local rows map back to.
struct ShardBlock<'p> {
    rows: PackedRows,
    global: &'p [u32],
}

/// The sharded, memory-budgeted counterpart of [`PackedRows`]: the same
/// exact bounded-distance plane (`pairs_within`,
/// `range_queries_within`), bit-identical at every thread count *and*
/// shard count, with at most two shard blocks resident at once. See the
/// [module docs](self).
pub struct PackedShards<'m, M: RowMatrix + Sync + ?Sized> {
    matrix: &'m M,
    plan: ShardPlan,
    norms: Vec<u32>,
    threads: usize,
}

impl<'m, M: RowMatrix + Sync + ?Sized> PackedShards<'m, M> {
    /// Plans shards for `matrix` under `memory_budget_bytes` (`0` =
    /// unbounded). Row norms are computed once on `threads` workers; no
    /// shard is built until a query runs.
    pub fn new(matrix: &'m M, memory_budget_bytes: usize, threads: usize) -> Self {
        let norms: Vec<u32> = parallel::par_map_rows(matrix.rows(), threads, |range| {
            range.map(|i| matrix.row_norm(i) as u32).collect()
        });
        let nnz = norms.iter().map(|&n| n as usize).sum();
        let plan = ShardPlan::new(&norms, matrix.cols(), nnz, memory_budget_bytes);
        PackedShards {
            matrix,
            plan,
            norms,
            threads,
        }
    }

    /// Smallest row norm in shard `s` (rows are norm-sorted, so it is
    /// the first row's).
    fn shard_min_norm(&self, s: usize) -> usize {
        self.norms[self.plan.shard_rows(s)[0] as usize] as usize
    }

    /// Largest row norm in shard `s`.
    fn shard_max_norm(&self, s: usize) -> usize {
        let rows = self.plan.shard_rows(s);
        self.norms[rows[rows.len() - 1] as usize] as usize
    }

    /// Number of rows in the backing matrix.
    pub fn rows(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of shard blocks in the plan.
    pub fn n_shards(&self) -> usize {
        self.plan.n_shards()
    }

    /// The shard plan (deterministic — see [`ShardPlan`]).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Builds shard `s`'s engine from the backing matrix, forcing the
    /// plan's global representation so cross-shard kernels never mix.
    fn build_shard(&self, s: usize) -> ShardBlock<'_> {
        let global = self.plan.shard_rows(s);
        let view = RowSubsetView::new(self.matrix, global);
        let rows = if self.plan.packed {
            PackedRows::packed_from_matrix(&view, self.threads)
        } else {
            PackedRows::sparse_from_matrix(&view, self.threads)
        };
        ShardBlock { rows, global }
    }

    /// Every unordered pair `(i, j)`, `i < j`, with
    /// `Hamming(i, j) ≤ bound`, plus the distance — ascending by `i`
    /// then `j`: bit-identical to
    /// [`PackedRows::pairs_within`] over the same matrix, at every
    /// thread count and shard count.
    pub fn pairs_within(&self, bound: usize) -> Vec<(usize, usize, usize)> {
        if self.n_shards() <= 1 {
            return PackedRows::from_matrix(self.matrix, self.threads)
                .pairs_within(bound, self.threads);
        }
        let mut pairs: Vec<(usize, usize, usize)> = Vec::new();
        for s in 0..self.n_shards() {
            let a = self.build_shard(s);
            // Self pass: the in-shard kernels, mapped to global indices.
            for (i, j, d) in a.rows.pairs_within(bound, self.threads) {
                let (gi, gj) = (a.global[i] as usize, a.global[j] as usize);
                pairs.push((gi.min(gj), gi.max(gj), d));
            }
            // Cross passes against every later shard whose norm range
            // overlaps this shard's band. Shards ascend in norm, so the
            // first out-of-band shard ends the scan — without being
            // built (the check reads the plan, not shard data).
            let max_norm_s = self.shard_max_norm(s);
            for t in (s + 1)..self.n_shards() {
                if self.shard_min_norm(t) > max_norm_s + bound {
                    break;
                }
                let b = self.build_shard(t);
                let chunks = parallel::par_map_ranges(a.rows.rows(), self.threads, |range| {
                    let mut out = Vec::new();
                    for i in range {
                        let norm = a.rows.row_norm(i);
                        let gi = a.global[i] as usize;
                        let lo = norm.saturating_sub(bound);
                        let hi = (norm + bound).min(b.rows.max_norm());
                        for band in lo..=hi {
                            for &j in b.rows.rows_with_norm(band) {
                                if let Some(d) =
                                    a.rows.bounded_hamming_cross(i, &b.rows, j as usize, bound)
                                {
                                    let gj = b.global[j as usize] as usize;
                                    out.push((gi.min(gj), gi.max(gj), d));
                                }
                            }
                        }
                    }
                    out
                });
                for chunk in chunks {
                    pairs.extend(chunk);
                }
            }
        }
        // Each pair was found in exactly one pass; the canonical sort
        // reproduces the flat engine's lexicographic order.
        pairs.sort_unstable();
        pairs
    }

    /// All `n` bounded range queries at once: `out[i]` lists every `j`
    /// (including `i` itself) with `Hamming(i, j) ≤ bound`, ascending —
    /// bit-identical to [`PackedRows::range_queries_within`] over the
    /// same matrix, at every thread count and shard count.
    pub fn range_queries_within(&self, bound: usize) -> Vec<Vec<usize>> {
        if self.n_shards() <= 1 {
            return PackedRows::from_matrix(self.matrix, self.threads)
                .range_queries_within(bound, self.threads);
        }
        let pairs = self.pairs_within(bound);
        let n = self.rows();
        let mut degree = vec![1usize; n];
        for &(i, j, _) in &pairs {
            degree[i] += 1;
            degree[j] += 1;
        }
        let mut out: Vec<Vec<usize>> = degree.iter().map(|&d| Vec::with_capacity(d)).collect();
        // Three ordered passes keep every row ascending without a sort:
        // neighbours below the row (pairs scanned in ascending `i`),
        // the row itself, then neighbours above it.
        for &(i, j, _) in &pairs {
            out[j].push(i);
        }
        for (i, row) in out.iter_mut().enumerate() {
            row.push(i);
        }
        for &(i, j, _) in &pairs {
            out[i].push(j);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    /// 10 rows over 70 columns (not a multiple of 64) with empty rows,
    /// duplicates and near-duplicates spread across norms.
    fn sample() -> CsrMatrix {
        CsrMatrix::from_rows_of_indices(
            10,
            70,
            &[
                vec![0, 1, 65],
                vec![],
                vec![0, 1, 65],
                vec![0, 1, 65, 69],
                (0..70).step_by(2).collect(),
                vec![7],
                vec![],
                (0..40).collect(),
                (0..40).map(|c| c + 1).collect(),
                vec![7, 8],
            ],
        )
        .unwrap()
    }

    #[test]
    fn plan_is_norm_sorted_and_budget_bounded() {
        let m = sample();
        let norms: Vec<u32> = (0..m.n_rows()).map(|i| m.row_norm(i) as u32).collect();
        let plan = ShardPlan::new(&norms, m.n_cols(), m.nnz(), 200);
        assert!(plan.n_shards() >= 3, "tiny budget must force shards");
        let mut seen = Vec::new();
        let mut last_norm = 0usize;
        for s in 0..plan.n_shards() {
            for &r in plan.shard_rows(s) {
                let nm = norms[r as usize] as usize;
                assert!(nm >= last_norm, "plan must ascend in norm");
                last_norm = nm;
                seen.push(r as usize);
            }
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..m.n_rows()).collect::<Vec<_>>());
        // Unbounded budget: one shard.
        assert_eq!(ShardPlan::new(&norms, m.n_cols(), m.nnz(), 0).n_shards(), 1);
    }

    #[test]
    fn sharded_results_match_flat_engine_at_every_thread_count() {
        let m = sample();
        for bound in [0usize, 1, 3, 40] {
            let flat = PackedRows::from_matrix(&m, 1);
            let expected_pairs = flat.pairs_within(bound, 1);
            let expected_queries = flat.range_queries_within(bound, 1);
            for budget in [0usize, 200, 400, 5_000] {
                for threads in [1usize, 2, 4, 8] {
                    let sharded = PackedShards::new(&m, budget, threads);
                    assert_eq!(
                        sharded.pairs_within(bound),
                        expected_pairs,
                        "bound={bound} budget={budget} threads={threads} shards={}",
                        sharded.n_shards()
                    );
                    assert_eq!(
                        sharded.range_queries_within(bound),
                        expected_queries,
                        "bound={bound} budget={budget} threads={threads} shards={}",
                        sharded.n_shards()
                    );
                }
            }
        }
    }

    #[test]
    fn subset_view_delegates_in_listed_order() {
        let m = sample();
        let rows = [4u32, 0, 1];
        let v = RowSubsetView::new(&m, &rows);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 70);
        assert_eq!(v.row_norm(0), m.row_norm(4));
        assert_eq!(v.row_indices(1), m.row_indices(0));
        assert_eq!(v.row_hamming(1, 2), m.row_hamming(0, 1));
        assert_eq!(v.row_dot(0, 1), m.row_dot(4, 0));
        assert_eq!(v.row_signature(2), m.row_signature(1));
        assert_eq!(v.nnz(), m.row_norm(4) + m.row_norm(0) + m.row_norm(1));
        let sums = v.col_sums();
        assert_eq!(sums.iter().sum::<usize>(), v.nnz());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subset_view_rejects_out_of_range_rows() {
        let m = sample();
        RowSubsetView::new(&m, &[99]);
    }

    #[test]
    fn empty_matrix_is_a_single_trivial_shard() {
        let m = CsrMatrix::zeros(0, 5);
        let sharded = PackedShards::new(&m, 64, 2);
        assert_eq!(sharded.n_shards(), 1);
        assert!(sharded.pairs_within(1).is_empty());
        assert!(sharded.range_queries_within(1).is_empty());
    }
}
