//! Fixed-length packed bit vectors.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::MatrixError;
use crate::Result;

/// Number of bits stored per storage word.
pub(crate) const BITS: usize = u64::BITS as usize;

/// Number of `u64` words needed to store `len` bits.
#[inline]
pub(crate) fn words_for(len: usize) -> usize {
    len.div_ceil(BITS)
}

/// Mask selecting the valid bits of the final word of a `len`-bit vector.
#[inline]
pub(crate) fn tail_mask(len: usize) -> u64 {
    let rem = len % BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// A fixed-length bit vector packed into `u64` words.
///
/// `BitVec` is the unit of storage for one matrix row: bit `j` is set when
/// the role is assigned to user/permission `j`. All bulk operations work a
/// word at a time, so Hamming distance between two 10,000-bit rows costs
/// ~157 `xor` + `popcount` pairs.
///
/// # Invariant
///
/// Bits at positions `>= len()` (the tail of the final word) are always
/// zero. Every mutating method maintains this, which makes `Eq` and `Hash`
/// safe to derive over the raw words.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::BitVec;
///
/// let a = BitVec::from_indices(8, &[0, 3, 7]).unwrap();
/// let b = BitVec::from_indices(8, &[0, 3]).unwrap();
/// assert_eq!(a.count_ones(), 3);
/// assert_eq!(a.hamming(&b).unwrap(), 1);
/// assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    blocks: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    ///
    /// # Examples
    ///
    /// ```
    /// let v = rolediet_matrix::BitVec::new(100);
    /// assert_eq!(v.len(), 100);
    /// assert!(v.is_zero());
    /// ```
    pub fn new(len: usize) -> Self {
        BitVec {
            len,
            blocks: vec![0; words_for(len)],
        }
    }

    /// Creates a bit vector with the given positions set.
    ///
    /// Indices may be unsorted and may repeat; repeats are idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] if any index is `>= len`.
    pub fn from_indices(len: usize, indices: &[usize]) -> Result<Self> {
        let mut v = BitVec::new(len);
        for &i in indices {
            v.try_set(i, true)?;
        }
        Ok(v)
    }

    /// Creates a bit vector from a slice of booleans, one per position.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVec::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Reconstructs a bit vector from raw words produced by [`as_words`].
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `words` has the wrong
    /// length for `len` bits, or if any bit beyond `len` is set (which would
    /// break the tail invariant).
    ///
    /// [`as_words`]: BitVec::as_words
    pub fn from_words(len: usize, words: Vec<u64>) -> Result<Self> {
        if words.len() != words_for(len) {
            return Err(MatrixError::DimensionMismatch {
                expected: words_for(len),
                actual: words.len(),
                what: "word count",
            });
        }
        if let Some(last) = words.last() {
            if !len.is_multiple_of(BITS) && last & !tail_mask(len) != 0 {
                return Err(MatrixError::DimensionMismatch {
                    expected: len,
                    actual: BITS * words.len(),
                    what: "bit length (tail bits set)",
                });
            }
        }
        Ok(BitVec { len, blocks: words })
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.blocks.iter().all(|&w| w == 0)
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of bounds");
        self.blocks[index / BITS] & (1u64 << (index % BITS)) != 0
    }

    /// Sets the bit at `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len, "bit index {index} out of bounds");
        let (w, b) = (index / BITS, index % BITS);
        if value {
            self.blocks[w] |= 1u64 << b;
        } else {
            self.blocks[w] &= !(1u64 << b);
        }
    }

    /// Fallible variant of [`set`](BitVec::set).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] if `index >= len()`.
    pub fn try_set(&mut self, index: usize, value: bool) -> Result<()> {
        if index >= self.len {
            return Err(MatrixError::IndexOutOfBounds {
                index,
                bound: self.len,
                axis: "bit",
            });
        }
        self.set(index, value);
        Ok(())
    }

    /// Number of set bits (the row *norm* `|Rⁱ|` in the paper).
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to `other`: the number of positions where the two
    /// vectors differ. This is the similarity measure of inefficiency type
    /// T5 ("roles sharing a similar set of users/permissions").
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if lengths differ.
    pub fn hamming(&self, other: &BitVec) -> Result<usize> {
        self.check_len(other)?;
        Ok(self
            .blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum())
    }

    /// Number of positions set in both vectors (the co-occurrence count
    /// `gⁱʲ` in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if lengths differ.
    pub fn intersection_count(&self, other: &BitVec) -> Result<usize> {
        self.check_len(other)?;
        Ok(self
            .blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum())
    }

    /// Number of positions set in either vector.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if lengths differ.
    pub fn union_count(&self, other: &BitVec) -> Result<usize> {
        self.check_len(other)?;
        Ok(self
            .blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum())
    }

    /// Jaccard similarity `|A∩B| / |A∪B|`; defined as `1.0` when both are
    /// empty (two empty roles are identical).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if lengths differ.
    pub fn jaccard(&self, other: &BitVec) -> Result<f64> {
        let union = self.union_count(other)?;
        if union == 0 {
            return Ok(1.0);
        }
        let inter = self.intersection_count(other)?;
        Ok(inter as f64 / union as f64)
    }

    /// In-place bitwise OR with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if lengths differ.
    pub fn union_with(&mut self, other: &BitVec) -> Result<()> {
        self.check_len(other)?;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= *b;
        }
        Ok(())
    }

    /// In-place bitwise AND with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if lengths differ.
    pub fn intersect_with(&mut self, other: &BitVec) -> Result<()> {
        self.check_len(other)?;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= *b;
        }
        Ok(())
    }

    /// In-place set difference (`self &= !other`).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if lengths differ.
    pub fn difference_with(&mut self, other: &BitVec) -> Result<()> {
        self.check_len(other)?;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !*b;
        }
        Ok(())
    }

    /// Returns `true` if every bit of `self` is also set in `other`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if lengths differ.
    pub fn is_subset_of(&self, other: &BitVec) -> Result<bool> {
        self.check_len(other)?;
        Ok(self
            .blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0))
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            blocks: &self.blocks,
            word_index: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Collects the indices of set bits into a vector.
    pub fn to_indices(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }

    /// Zero-copy view of the underlying words (tail bits are zero).
    pub fn as_words(&self) -> &[u64] {
        &self.blocks
    }

    /// Sets all bits to zero, keeping the length.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|w| *w = 0);
    }

    #[inline]
    fn check_len(&self, other: &BitVec) -> Result<()> {
        if self.len != other.len {
            return Err(MatrixError::DimensionMismatch {
                expected: self.len,
                actual: other.len,
                what: "bit length",
            });
        }
        Ok(())
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec(len={}, ones=[", self.len)?;
        for (n, i) in self.iter_ones().enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            if n == 16 {
                write!(f, "…")?;
                break;
            }
            write!(f, "{i}")?;
        }
        write!(f, "])")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bits)
    }
}

/// Iterator over the indices of set bits of a [`BitVec`], produced by
/// [`BitVec::iter_ones`].
#[derive(Debug, Clone)]
pub struct Ones<'a> {
    blocks: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_index * BITS + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        let v = BitVec::new(130);
        assert_eq!(v.len(), 130);
        assert!(v.is_zero());
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.as_words().len(), 3);
    }

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut v = BitVec::new(200);
        for i in [0, 1, 63, 64, 65, 127, 128, 199] {
            assert!(!v.get(i));
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        BitVec::new(10).get(10);
    }

    #[test]
    fn try_set_reports_bound() {
        let mut v = BitVec::new(10);
        let err = v.try_set(10, true).unwrap_err();
        assert_eq!(
            err,
            MatrixError::IndexOutOfBounds {
                index: 10,
                bound: 10,
                axis: "bit"
            }
        );
    }

    #[test]
    fn from_indices_idempotent_on_repeats() {
        let v = BitVec::from_indices(10, &[3, 3, 3, 7]).unwrap();
        assert_eq!(v.count_ones(), 2);
        assert_eq!(v.to_indices(), vec![3, 7]);
    }

    #[test]
    fn from_indices_rejects_out_of_range() {
        assert!(BitVec::from_indices(4, &[4]).is_err());
    }

    #[test]
    fn hamming_examples() {
        let a = BitVec::from_indices(100, &[1, 50, 99]).unwrap();
        let b = BitVec::from_indices(100, &[1, 51, 99]).unwrap();
        assert_eq!(a.hamming(&a).unwrap(), 0);
        assert_eq!(a.hamming(&b).unwrap(), 2);
        assert_eq!(a.hamming(&BitVec::new(100)).unwrap(), 3);
    }

    #[test]
    fn hamming_rejects_length_mismatch() {
        let a = BitVec::new(10);
        let b = BitVec::new(11);
        assert!(matches!(
            a.hamming(&b),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn set_algebra() {
        let a = BitVec::from_indices(70, &[0, 10, 65]).unwrap();
        let b = BitVec::from_indices(70, &[10, 20, 65]).unwrap();
        assert_eq!(a.intersection_count(&b).unwrap(), 2);
        assert_eq!(a.union_count(&b).unwrap(), 4);
        let mut u = a.clone();
        u.union_with(&b).unwrap();
        assert_eq!(u.to_indices(), vec![0, 10, 20, 65]);
        let mut i = a.clone();
        i.intersect_with(&b).unwrap();
        assert_eq!(i.to_indices(), vec![10, 65]);
        let mut d = a.clone();
        d.difference_with(&b).unwrap();
        assert_eq!(d.to_indices(), vec![0]);
        assert!(i.is_subset_of(&a).unwrap());
        assert!(!a.is_subset_of(&b).unwrap());
    }

    #[test]
    fn jaccard_edge_cases() {
        let empty = BitVec::new(10);
        assert_eq!(empty.jaccard(&empty).unwrap(), 1.0);
        let a = BitVec::from_indices(10, &[1, 2]).unwrap();
        let b = BitVec::from_indices(10, &[2, 3]).unwrap();
        assert!((a.jaccard(&b).unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn iter_ones_crosses_words() {
        let idx = vec![0, 63, 64, 100, 127, 128];
        let v = BitVec::from_indices(129, &idx).unwrap();
        assert_eq!(v.to_indices(), idx);
    }

    #[test]
    fn iter_ones_empty_and_zero_length() {
        assert_eq!(BitVec::new(0).to_indices(), Vec::<usize>::new());
        assert_eq!(BitVec::new(64).to_indices(), Vec::<usize>::new());
    }

    #[test]
    fn eq_and_hash_consistent_for_same_content() {
        use std::collections::HashSet;
        let a = BitVec::from_indices(100, &[5, 50]).unwrap();
        let mut b = BitVec::new(100);
        b.set(50, true);
        b.set(5, true);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn from_words_validates_tail() {
        // 65 bits → 2 words; second word may only use bit 0.
        assert!(BitVec::from_words(65, vec![0, 1]).is_ok());
        assert!(BitVec::from_words(65, vec![0, 2]).is_err());
        assert!(BitVec::from_words(65, vec![0]).is_err());
    }

    #[test]
    fn from_bools_and_collect() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v.to_indices(), vec![0, 2]);
        assert_eq!(v, BitVec::from_bools(&[true, false, true]));
    }

    #[test]
    fn clear_resets_all() {
        let mut v = BitVec::from_indices(70, &[0, 69]).unwrap();
        v.clear();
        assert!(v.is_zero());
        assert_eq!(v.len(), 70);
    }

    #[test]
    fn debug_is_nonempty_and_truncates() {
        let v = BitVec::from_indices(100, &(0..40).collect::<Vec<_>>()).unwrap();
        let s = format!("{v:?}");
        assert!(s.contains("len=100"));
        assert!(s.contains('…'));
        let empty = BitVec::new(0);
        assert!(!format!("{empty:?}").is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let v = BitVec::from_indices(100, &[3, 64, 99]).unwrap();
        let json = serde_json::to_string(&v).unwrap();
        let back: BitVec = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
