//! Deterministic parallel-execution substrate.
//!
//! Every parallel stage in the workspace — T5 pair streaming, transpose,
//! column sums, signature hashing, DBSCAN neighbourhood precomputation —
//! funnels through this module: one place that splits a row index space
//! into contiguous chunks, runs one scoped worker per chunk, and joins
//! results back **in range order**. Because the merge order is the range
//! order (never completion order) and every chunk computes the same
//! function a sequential loop would, results are bit-identical for every
//! thread count, which the pipeline's determinism tests pin.
//!
//! Worker panics are re-raised on the caller thread with their original
//! payload ([`std::panic::resume_unwind`]), so a failed assertion inside
//! a worker produces the same panic message a sequential run would.
//!
//! # Race auditing
//!
//! Under `cfg(test)` or the `audit` feature, every dispatch additionally
//! runs the [`audit`] write-span checks: the chunk ranges (and, for
//! [`par_fill_by_offsets`], the output spans they claim) are verified
//! pairwise disjoint, in range order, and fully covering *before any
//! worker is spawned* — a deterministic race detector for the
//! substrate's core soundness contract that does not depend on thread
//! interleavings to trip. The checks run identically on the inline
//! (single-chunk) path, so a contract violation panics with the same
//! message at every thread count.

use std::ops::Range;

#[cfg(any(test, feature = "audit"))]
pub mod audit {
    //! Deterministic write-span race auditor.
    //!
    //! The substrate's soundness rests on a static claim: the chunks
    //! handed to workers partition the index space, and the output
    //! slices they may write partition the output buffer. These checks
    //! verify that claim eagerly — before join, before any worker runs —
    //! so an overlapping or gapped span panics deterministically instead
    //! of racing. Active under `cfg(test)` and the `audit` feature;
    //! release builds without the feature pay nothing.

    use std::ops::Range;

    /// Asserts that `spans` are non-inverted, pairwise disjoint, in
    /// ascending order, and exactly cover `0..total`.
    ///
    /// # Panics
    ///
    /// Panics with a `write-span audit:` message naming the first
    /// inverted span, overlap, or gap.
    pub fn check_write_spans(spans: &[Range<usize>], total: usize) {
        let mut cursor = 0usize;
        for (i, s) in spans.iter().enumerate() {
            assert!(
                s.start <= s.end,
                "write-span audit: span {i} is inverted ({} > {})",
                s.start,
                s.end
            );
            assert!(
                s.start >= cursor,
                "write-span audit: span {i} ({}..{}) overlaps the span before it (claimed through {cursor})",
                s.start,
                s.end
            );
            assert!(
                s.start <= cursor,
                "write-span audit: gap before span {i} (elements {cursor}..{} claimed by no worker)",
                s.start
            );
            cursor = s.end;
        }
        assert!(
            cursor == total,
            "write-span audit: spans cover only {cursor} of {total} elements"
        );
    }

    /// Asserts that worker `ranges` are non-empty, in order, disjoint,
    /// and exactly cover `0..n` — the [`split_ranges`] contract every
    /// dispatch relies on.
    ///
    /// # Panics
    ///
    /// Panics with a `write-span audit:` message on any violation.
    ///
    /// [`split_ranges`]: super::split_ranges
    pub fn check_ranges(ranges: &[Range<usize>], n: usize) {
        for (i, r) in ranges.iter().enumerate() {
            assert!(!r.is_empty(), "write-span audit: chunk {i} is empty");
        }
        check_write_spans(ranges, n);
    }

    /// Asserts the `par_fill_by_offsets` offsets contract: non-empty,
    /// starting at 0, and monotone — the properties that make the
    /// derived write spans a partition for *every* chunking.
    ///
    /// # Panics
    ///
    /// Panics with a `write-span audit:` message naming the first
    /// non-monotone row, at every thread count identically.
    pub fn check_offsets(offsets: &[usize]) {
        assert!(
            !offsets.is_empty(),
            "write-span audit: offsets must be non-empty"
        );
        assert!(
            offsets[0] == 0,
            "write-span audit: offsets must start at 0 (got {})",
            offsets[0]
        );
        for (i, w) in offsets.windows(2).enumerate() {
            assert!(
                w[0] <= w[1],
                "write-span audit: offsets not monotone at row {i} ({} -> {})",
                w[0],
                w[1]
            );
        }
    }
}

/// Splits `0..n` into at most `threads` contiguous, non-empty ranges
/// covering the whole index space in order.
///
/// The first chunks take `ceil(n / threads)` items, so at most one chunk
/// is short and none is empty. `threads` is clamped to at least 1;
/// `n == 0` yields no ranges.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::parallel::split_ranges;
///
/// assert_eq!(split_ranges(10, 4), vec![0..3, 3..6, 6..9, 9..10]);
/// assert_eq!(split_ranges(2, 8), vec![0..1, 1..2]);
/// assert_eq!(split_ranges(0, 4), Vec::<std::ops::Range<usize>>::new());
/// ```
pub fn split_ranges(n: usize, threads: usize) -> Vec<Range<usize>> {
    let threads = threads.max(1);
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(threads);
    let mut out = Vec::with_capacity(threads.min(n));
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

/// Runs `work` over each chunk of `0..n` and returns the per-chunk
/// results **in range order**, one entry per range of
/// [`split_ranges`]`(n, threads)`.
///
/// With one effective chunk (or `threads <= 1`) the work runs inline on
/// the caller thread — the sequential and parallel paths execute the
/// same code. A worker panic is re-raised here with its original
/// payload.
pub fn par_map_ranges<T, F>(n: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = split_ranges(n, threads);
    #[cfg(any(test, feature = "audit"))]
    audit::check_ranges(&ranges, n);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(work).collect();
    }
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(move || work(range)))
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(value) => value,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Chunked row-range map-reduce: runs `work` over each chunk of `0..n`
/// and concatenates the per-chunk vectors in range order.
///
/// This is the common shape of the parallel stages — each worker emits
/// the items its row range produces, and concatenation in range order
/// reproduces exactly the sequence a sequential `0..n` loop would emit.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::parallel::par_map_rows;
///
/// let doubled = par_map_rows(6, 3, |range| range.map(|i| i * 2).collect());
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8, 10]);
/// ```
pub fn par_map_rows<T, F>(n: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let mut chunks = par_map_ranges(n, threads, work);
    if let [only] = chunks.as_mut_slice() {
        return std::mem::take(only);
    }
    let mut merged = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    for chunk in chunks {
        merged.extend(chunk);
    }
    merged
}

/// Chunked map-reduce with a deterministic fold: runs `work` over each
/// chunk of `0..n` and folds the per-chunk results into the first one
/// **in range order** with `reduce`.
///
/// This is the shape of the parallel grouping kernels: each worker
/// builds a local partial structure (e.g. a union-find forest over its
/// row range's edges) and the partials are absorbed left-to-right, so
/// the merged result never depends on completion order or thread count.
/// Returns `None` when `n == 0` (no chunks, nothing to fold).
///
/// # Examples
///
/// ```
/// use rolediet_matrix::parallel::par_map_reduce_ranges;
///
/// let sum = par_map_reduce_ranges(
///     10,
///     4,
///     |range| range.sum::<usize>(),
///     |acc, part| *acc += part,
/// );
/// assert_eq!(sum, Some(45));
/// assert_eq!(par_map_reduce_ranges(0, 4, |_| 0usize, |a, b| *a += b), None);
/// ```
pub fn par_map_reduce_ranges<T, F, R>(n: usize, threads: usize, work: F, mut reduce: R) -> Option<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
    R: FnMut(&mut T, T),
{
    let mut parts = par_map_ranges(n, threads, work).into_iter();
    let mut acc = parts.next()?;
    for part in parts {
        reduce(&mut acc, part);
    }
    Some(acc)
}

/// Fills disjoint slices of `out` in parallel, one worker per chunk of
/// `0..n`.
///
/// `offsets` maps the row space onto the element space of `out`
/// (`offsets.len() == n + 1`, monotone, `offsets[n] == out.len()` —
/// exactly the shape of a CSR `indptr`): the worker owning rows
/// `range` receives `&mut out[offsets[range.start]..offsets[range.end]]`
/// and writes it in place. Because the ranges of [`split_ranges`] are
/// disjoint and cover `0..n`, the slices partition `out`, so no copy or
/// post-merge is needed — this is the fill pass of two-pass CSR
/// construction.
///
/// Worker panics are re-raised on the caller thread with their original
/// payload, like [`par_map_ranges`].
///
/// # Panics
///
/// Panics if `offsets` does not have length `n + 1` or its terminal
/// value is not `out.len()` (non-monotone offsets panic inside the
/// slicing).
///
/// # Examples
///
/// ```
/// use rolediet_matrix::parallel::par_fill_by_offsets;
///
/// let mut out = vec![0u32; 6];
/// // Rows of widths 1, 3, 0, 2.
/// let offsets = [0, 1, 4, 4, 6];
/// par_fill_by_offsets(&mut out, &offsets, 2, |range, slice| {
///     let mut k = 0;
///     for row in range {
///         for _ in offsets[row]..offsets[row + 1] {
///             slice[k] = row as u32;
///             k += 1;
///         }
///     }
/// });
/// assert_eq!(out, vec![0, 1, 1, 1, 3, 3]);
/// ```
pub fn par_fill_by_offsets<T, F>(out: &mut [T], offsets: &[usize], threads: usize, work: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    let n = offsets
        .len()
        .checked_sub(1)
        .expect("offsets must be non-empty");
    assert_eq!(
        offsets[n],
        out.len(),
        "terminal offset must equal output length"
    );
    let ranges = split_ranges(n, threads);
    #[cfg(any(test, feature = "audit"))]
    {
        audit::check_offsets(offsets);
        let spans: Vec<Range<usize>> = ranges
            .iter()
            .map(|r| offsets[r.start]..offsets[r.end])
            .collect();
        audit::check_write_spans(&spans, out.len());
    }
    if ranges.len() <= 1 {
        if let Some(range) = ranges.into_iter().next() {
            work(range, out);
        }
        return;
    }
    std::thread::scope(|scope| {
        let work = &work;
        let mut rest = out;
        let mut consumed = 0usize;
        let mut handles = Vec::with_capacity(ranges.len());
        for range in ranges {
            let (chunk, tail) = rest.split_at_mut(offsets[range.end] - consumed);
            consumed = offsets[range.end];
            rest = tail;
            handles.push(scope.spawn(move || work(range, chunk)));
        }
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything_in_order() {
        for n in 0..50 {
            for threads in 1..10 {
                let ranges = split_ranges(n, threads);
                assert!(ranges.len() <= threads.max(1));
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} threads={threads}");
                assert!(ranges.iter().all(|r| !r.is_empty()));
            }
        }
    }

    #[test]
    fn split_clamps_zero_threads() {
        assert_eq!(split_ranges(3, 0), vec![0..3]);
    }

    #[test]
    fn par_map_rows_matches_sequential_for_every_thread_count() {
        let sequential: Vec<usize> = (0..103).map(|i| i * i).collect();
        for threads in [1, 2, 3, 4, 7, 8, 16, 200] {
            let parallel = par_map_rows(103, threads, |range| range.map(|i| i * i).collect());
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn par_map_ranges_returns_results_in_range_order() {
        let results = par_map_ranges(8, 4, |range| {
            // Make earlier chunks slower so completion order is reversed.
            std::thread::sleep(std::time::Duration::from_millis(
                20u64.saturating_sub(range.start as u64 * 5),
            ));
            range.start
        });
        assert_eq!(results, vec![0, 2, 4, 6]);
    }

    #[test]
    fn empty_input_runs_no_work() {
        let results: Vec<usize> = par_map_rows(0, 4, |_| panic!("no chunks expected"));
        assert!(results.is_empty());
    }

    #[test]
    fn map_reduce_folds_in_range_order_for_every_thread_count() {
        // A non-commutative fold (string concatenation) exposes any
        // completion-order dependence.
        let sequential: String = (0..23).map(|i| format!("{i},")).collect();
        for threads in [1, 2, 3, 4, 8, 50] {
            let folded = par_map_reduce_ranges(
                23,
                threads,
                |range| range.map(|i| format!("{i},")).collect::<String>(),
                |acc, part| acc.push_str(&part),
            );
            assert_eq!(
                folded.as_deref(),
                Some(sequential.as_str()),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn map_reduce_empty_input_returns_none() {
        assert_eq!(
            par_map_reduce_ranges(0, 4, |_| unreachable!("no chunks"), |_: &mut usize, _| {}),
            None
        );
    }

    #[test]
    fn fill_by_offsets_matches_sequential_for_every_thread_count() {
        // Rows of varying width, including empty rows at both ends.
        let widths = [0usize, 3, 1, 0, 4, 2, 0];
        let mut offsets = vec![0usize];
        for w in widths {
            offsets.push(offsets.last().unwrap() + w);
        }
        let total = *offsets.last().unwrap();
        let fill = |range: Range<usize>, slice: &mut [u64]| {
            let mut k = 0;
            for row in range {
                for slot in offsets[row]..offsets[row + 1] {
                    slice[k] = (row * 100 + slot) as u64;
                    k += 1;
                }
            }
        };
        let mut expected = vec![0u64; total];
        fill(0..widths.len(), &mut expected);
        for threads in [1, 2, 3, 4, 8, 50] {
            let mut out = vec![0u64; total];
            par_fill_by_offsets(&mut out, &offsets, threads, fill);
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn fill_by_offsets_empty_rows_and_output() {
        let mut out: Vec<u32> = Vec::new();
        par_fill_by_offsets(&mut out, &[0], 4, |_, _| panic!("no rows expected"));
        par_fill_by_offsets(&mut out, &[0, 0, 0], 4, |_, slice| {
            assert!(slice.is_empty());
        });
    }

    #[test]
    #[should_panic(expected = "terminal offset must equal output length")]
    fn fill_by_offsets_rejects_mismatched_offsets() {
        let mut out = vec![0u32; 3];
        par_fill_by_offsets(&mut out, &[0, 2], 2, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "fill worker panic")]
    fn fill_by_offsets_propagates_worker_panics() {
        let mut out = vec![0u32; 8];
        let offsets: Vec<usize> = (0..=8).collect();
        par_fill_by_offsets(&mut out, &offsets, 4, |range, _| {
            if range.start >= 4 {
                panic!("fill worker panic");
            }
        });
    }

    #[test]
    #[should_panic(expected = "original worker panic message")]
    fn worker_panic_is_propagated_verbatim() {
        par_map_ranges(8, 4, |range| {
            if range.start == 2 {
                panic!("original worker panic message");
            }
            range.start
        });
    }

    #[test]
    fn split_with_more_threads_than_items_yields_unit_ranges() {
        let ranges = split_ranges(3, 100);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3]);
        // And dispatch over them still matches the sequential result.
        let doubled = par_map_rows(3, 100, |range| range.map(|i| i * 2).collect());
        assert_eq!(doubled, vec![0, 2, 4]);
    }

    #[test]
    fn fill_by_offsets_single_row() {
        // A one-row offsets array always takes the inline path, at any
        // thread count.
        for threads in [1, 4, 16] {
            let mut out = vec![0u32; 5];
            par_fill_by_offsets(&mut out, &[0, 5], threads, |range, slice| {
                assert_eq!(range, 0..1);
                slice.fill(7);
            });
            assert_eq!(out, vec![7; 5], "threads={threads}");
        }
    }

    #[test]
    fn fill_by_offsets_zero_width_trailing_chunks() {
        // All data lives in row 0; rows 1 and 2 are empty, so with three
        // threads the trailing workers receive zero-width slices.
        let offsets = [0usize, 2, 2, 2];
        for threads in [1, 2, 3, 8] {
            let mut out = vec![0u32; 2];
            par_fill_by_offsets(&mut out, &offsets, threads, |range, slice| {
                if range.contains(&0) {
                    slice[0] = 1;
                    slice[1] = 2;
                } else {
                    assert!(slice.is_empty(), "trailing chunk {range:?} must be empty");
                }
            });
            assert_eq!(out, vec![1, 2], "threads={threads}");
        }
    }

    fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            String::from("<non-string panic payload>")
        }
    }

    #[test]
    fn non_monotone_offsets_panic_identically_at_every_thread_count() {
        let offsets = [0usize, 4, 2, 6];
        let mut messages = Vec::new();
        for threads in [1, 2, 3, 8] {
            let result = std::panic::catch_unwind(|| {
                let mut out = vec![0u32; 6];
                par_fill_by_offsets(&mut out, &offsets, threads, |_, _| {});
            });
            let payload = result.expect_err("non-monotone offsets must panic");
            messages.push(panic_message(payload));
        }
        assert!(
            messages[0].contains("offsets not monotone at row 1 (4 -> 2)"),
            "unexpected message: {}",
            messages[0]
        );
        assert!(
            messages.iter().all(|m| m == &messages[0]),
            "panic message differs across thread counts: {messages:?}"
        );
    }

    #[test]
    fn audit_accepts_partitions_with_zero_width_spans() {
        audit::check_write_spans(&[], 0);
        audit::check_write_spans(&[0..2, 2..2, 2..4], 4);
        audit::check_ranges(&split_ranges(10, 3), 10);
        audit::check_offsets(&[0, 0, 3, 3, 7]);
    }

    #[test]
    #[should_panic(expected = "overlaps the span before it")]
    fn audit_catches_overlapping_spans() {
        // A deliberately overlapping claim: both workers would own
        // elements 2..3.
        audit::check_write_spans(&[0..3, 2..5], 5);
    }

    #[test]
    #[should_panic(expected = "claimed by no worker")]
    fn audit_catches_gapped_spans() {
        audit::check_write_spans(&[0..2, 3..5], 5);
    }

    #[test]
    #[should_panic(expected = "is inverted")]
    #[allow(clippy::reversed_empty_ranges)]
    fn audit_catches_inverted_spans() {
        audit::check_write_spans(&[0..2, 4..2], 4);
    }

    #[test]
    #[should_panic(expected = "cover only 2 of 5")]
    #[allow(clippy::single_range_in_vec_init)] // a one-span plan, not a range literal
    fn audit_catches_short_coverage() {
        audit::check_write_spans(&[0..2], 5);
    }

    #[test]
    #[should_panic(expected = "chunk 1 is empty")]
    fn audit_rejects_empty_chunk_ranges() {
        audit::check_ranges(&[0..2, 2..2, 2..4], 4);
    }

    #[test]
    #[should_panic(expected = "must start at 0")]
    fn audit_rejects_offsets_not_starting_at_zero() {
        audit::check_offsets(&[1, 3]);
    }
}
