//! The [`RowMatrix`] abstraction shared by dense and sparse matrices.

use crate::bitvec::BitVec;
use crate::signature::RowSignature;

/// A read-only binary matrix viewed as a collection of rows.
///
/// Every detector in `rolediet-core` is generic over `RowMatrix`, so the
/// same algorithm runs on a dense [`BitMatrix`](crate::BitMatrix) (fast for
/// the paper's synthetic benchmarks, up to ~10k × 10k) or a sparse
/// [`CsrMatrix`](crate::CsrMatrix) (required at real-org scale, where the
/// dense RUAM would need 50,000 × 90,000 bits ≈ 560 MB but holds only a few
/// hundred thousand ones).
///
/// Row indices correspond to roles; column indices to users (RUAM) or
/// permissions (RPAM).
pub trait RowMatrix {
    /// Number of rows (roles).
    fn rows(&self) -> usize;

    /// Number of columns (users or permissions).
    fn cols(&self) -> usize;

    /// Number of set bits in row `i` — the norm `|Rⁱ|`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    fn row_norm(&self, i: usize) -> usize;

    /// Hamming distance between rows `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    fn row_hamming(&self, i: usize, j: usize) -> usize;

    /// Co-occurrence count `gⁱʲ`: number of columns set in both rows.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    fn row_dot(&self, i: usize, j: usize) -> usize;

    /// Returns `true` if rows `i` and `j` are identical.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    fn rows_equal(&self, i: usize, j: usize) -> bool {
        self.row_hamming(i, j) == 0
    }

    /// Column indices set in row `i`, in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    fn row_indices(&self, i: usize) -> Vec<usize>;

    /// Copies row `i` into an owned [`BitVec`] of `cols()` bits.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    fn row_bitvec(&self, i: usize) -> BitVec;

    /// A collision-resistant content signature of row `i`; equal rows have
    /// equal signatures. See [`RowSignature`] for the collision discussion.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    fn row_signature(&self, i: usize) -> RowSignature;

    /// Sum of every column: `col_sums()[j]` counts the roles containing
    /// column `j`. Used by the linear-time detectors (standalone nodes).
    fn col_sums(&self) -> Vec<usize>;

    /// [`col_sums`](Self::col_sums) with the row scan split over
    /// `threads` workers via [`parallel`](crate::parallel): each worker
    /// accumulates partial sums over its row range and the partials are
    /// added in range order. Identical output for every thread count.
    fn col_sums_with(&self, threads: usize) -> Vec<usize>
    where
        Self: Sync,
    {
        if threads.max(1) == 1 {
            return self.col_sums();
        }
        let partials = crate::parallel::par_map_ranges(self.rows(), threads, |range| {
            let mut sums = vec![0usize; self.cols()];
            for i in range {
                for j in self.row_indices(i) {
                    sums[j] += 1;
                }
            }
            sums
        });
        let mut sums = vec![0usize; self.cols()];
        for partial in partials {
            for (s, p) in sums.iter_mut().zip(partial) {
                *s += p;
            }
        }
        sums
    }

    /// Sum of every row; `row_sums()[i] == row_norm(i)`.
    fn row_sums(&self) -> Vec<usize> {
        (0..self.rows()).map(|i| self.row_norm(i)).collect()
    }

    /// [`row_sums`](Self::row_sums) with the rows split over `threads`
    /// workers. Identical output for every thread count.
    fn row_sums_with(&self, threads: usize) -> Vec<usize>
    where
        Self: Sync,
    {
        crate::parallel::par_map_rows(self.rows(), threads, |range| {
            range.map(|i| self.row_norm(i)).collect()
        })
    }

    /// Total number of set bits (assignments) in the matrix.
    fn nnz(&self) -> usize {
        self.row_sums().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::BitMatrix;
    use crate::sparse::CsrMatrix;

    fn sample_rows() -> Vec<Vec<usize>> {
        vec![vec![0, 2, 4], vec![1], vec![0, 2, 4], vec![]]
    }

    fn assert_matrix_behaviour<M: RowMatrix + Sync>(m: &M) {
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 5);
        assert_eq!(m.row_norm(0), 3);
        assert_eq!(m.row_norm(3), 0);
        assert_eq!(m.row_hamming(0, 2), 0);
        assert!(m.rows_equal(0, 2));
        assert!(!m.rows_equal(0, 1));
        assert_eq!(m.row_dot(0, 2), 3);
        assert_eq!(m.row_dot(0, 1), 0);
        assert_eq!(m.row_indices(0), vec![0, 2, 4]);
        assert_eq!(m.row_bitvec(1).to_indices(), vec![1]);
        assert_eq!(m.col_sums(), vec![2, 1, 2, 0, 2]);
        assert_eq!(m.row_sums(), vec![3, 1, 3, 0]);
        for threads in [1, 2, 3, 8] {
            assert_eq!(m.col_sums_with(threads), m.col_sums());
            assert_eq!(m.row_sums_with(threads), m.row_sums());
        }
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.row_signature(0), m.row_signature(2));
        assert_ne!(m.row_signature(0), m.row_signature(1));
    }

    #[test]
    fn dense_and_sparse_agree_with_trait_contract() {
        let rows = sample_rows();
        let dense = BitMatrix::from_rows_of_indices(4, 5, &rows).unwrap();
        let sparse = CsrMatrix::from_rows_of_indices(4, 5, &rows).unwrap();
        assert_matrix_behaviour(&dense);
        assert_matrix_behaviour(&sparse);
    }
}
