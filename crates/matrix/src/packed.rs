//! Batched bounded-distance engine for the O(n²) T4/T5 distance plane.
//!
//! Every exact duplicate/similarity detector ultimately asks the same
//! question n² times: *is the Hamming distance between rows `i` and `j`
//! at most `bound`?* — with `bound = 0` for T4 and `bound = t` for T5.
//! [`PackedRows`] answers it without ever walking a full row pair when
//! the answer is knowable sooner:
//!
//! 1. **Norm-band pruning.** `Hamming(i, j) ≥ |‖rᵢ‖ − ‖rⱼ‖|` (dropping a
//!    set bit costs one mismatch minimum), so any pair whose precomputed
//!    norms differ by more than `bound` is rejected in O(1) without
//!    touching row data. Rows are also counting-sorted into *norm
//!    buckets*, so the batched kernels enumerate only candidates inside
//!    the band `[‖rᵢ‖ − bound, ‖rᵢ‖ + bound]` instead of scanning all n.
//! 2. **Early-exit kernels.** Within the band, the distance loop aborts
//!    the moment the running mismatch count exceeds `bound`: the packed
//!    representation XOR-popcounts contiguous `u64` word blocks in
//!    eight-word lanes (checked once per block — see
//!    [`xor_popcount_within`]), the sparse representation merge-walks two sorted
//!    index lists and counts mismatches as it goes.
//!
//! The representation is **density-keyed** at construction: rows pack
//! into contiguous word blocks when a dense row costs no more to scan
//! than the average sparse merge (`words ≤ max(8, 2·nnz/rows)`), and fall
//! back to an owned CSR copy for extremely sparse data — at real-org
//! scale (50 300 × 89 900, density ≈ 1e-4) packing would waste ~565 MB
//! and thousands of zero words per pair, while the sorted-merge touches
//! only the few set bits.
//!
//! The batched kernels ([`range_queries_within`](PackedRows::range_queries_within),
//! [`pairs_within`](PackedRows::pairs_within)) run on the shared
//! [`parallel`](crate::parallel) substrate with tiles joined in range
//! order, so their output is bit-identical at every thread count; a
//! no-pruning scan ([`range_queries_within_no_prune`](PackedRows::range_queries_within_no_prune))
//! survives as the ablation baseline for the norm band.

use crate::bitvec::words_for;
use crate::parallel;
use crate::traits::RowMatrix;

/// Row storage behind the engine: dense packed words or an owned sparse
/// index copy, chosen by density at build time.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    /// Rows packed into contiguous `u64` blocks of `words_per_row` words
    /// each (row `i` occupies `words[i·wpr .. (i+1)·wpr]`).
    Packed {
        /// All rows' words, row-major, tail bits zero.
        words: Vec<u64>,
        /// Words per row, `words_for(cols)`.
        words_per_row: usize,
    },
    /// Owned sparse copy: row `i`'s set columns are
    /// `indices[starts[i]..starts[i] + norm(i)]`, ascending. Each span
    /// carries an explicit capacity so [`PackedRows::patch_row`] can
    /// rewrite a row in place when the new contents fit, or relocate the
    /// span to the tail without shifting every later row; `dead` counts
    /// the entries abandoned by relocations, and a compaction pass
    /// rebuilds contiguous storage once they dominate.
    Sparse {
        /// Per-row span offsets into `indices`.
        starts: Vec<usize>,
        /// Per-row span capacities, each ≥ the row's norm.
        caps: Vec<u32>,
        /// Column-index storage; only the first `norm(i)` entries of a
        /// row's span are live.
        indices: Vec<u32>,
        /// Entries covered by no row's span (left behind by relocating
        /// patches).
        dead: usize,
    },
}

/// A batch of binary rows prepared for bounded Hamming-distance queries:
/// norms precomputed, rows counting-sorted into norm buckets, and row
/// data either packed into cache-friendly `u64` word blocks or kept as a
/// contiguous sparse index copy (density-keyed — see the
/// [module docs](self)).
///
/// Built once per matrix (in parallel, deterministically) and then
/// queried many times; all batched kernels are bit-identical at every
/// thread count.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::{BitMatrix, PackedRows};
///
/// let m = BitMatrix::from_rows_of_indices(3, 4, &[
///     vec![0, 1], vec![0, 1, 2], vec![3],
/// ]).unwrap();
/// let packed = PackedRows::from_matrix(&m, 1);
/// assert_eq!(packed.bounded_hamming(0, 1, 1), Some(1));
/// assert_eq!(packed.bounded_hamming(0, 2, 1), None); // distance 3 > 1
/// assert_eq!(packed.range_queries_within(1, 2), vec![
///     vec![0, 1], vec![0, 1], vec![2],
/// ]);
/// ```
///
/// Equality compares the *logical* batch (dimensions, norms, buckets and
/// row contents) — two engines that took different patch histories to the
/// same rows compare equal only if their storage also landed identically,
/// so incremental consumers that replay the same delta stream twice can
/// assert convergence structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedRows {
    rows: usize,
    cols: usize,
    /// Per-row popcounts (norms); `cols` fits `u32` by the matrix types'
    /// construction, and norms never exceed `cols`.
    norms: Vec<u32>,
    repr: Repr,
    /// Norm-bucket offsets: rows with norm `b` are
    /// `bucket_members[bucket_indptr[b]..bucket_indptr[b + 1]]`,
    /// ascending by row index. Length `max_norm + 2`.
    bucket_indptr: Vec<usize>,
    /// Row indices counting-sorted by norm (stable, so ascending within
    /// each bucket).
    bucket_members: Vec<u32>,
}

/// Candidate tiles in the full-scan path are sized to roughly this many
/// packed words so a tile of candidate rows stays resident in L2 while
/// every query row of a chunk runs against it.
const SCAN_TILE_WORDS: usize = 32_768;

impl PackedRows {
    /// Builds the engine from any [`RowMatrix`], choosing the packed or
    /// sparse representation by density (see the [module docs](self)).
    /// The build itself runs on `threads` workers and is deterministic.
    pub fn from_matrix<M: RowMatrix + Sync + ?Sized>(m: &M, threads: usize) -> Self {
        let rows = m.rows();
        let avg2 = (2 * m.nnz()).checked_div(rows).unwrap_or(0);
        let pack = words_for(m.cols()) <= avg2.max(8);
        if pack {
            Self::packed_from_matrix(m, threads)
        } else {
            Self::sparse_from_matrix(m, threads)
        }
    }

    /// Builds the engine with the packed (dense word-block)
    /// representation regardless of density — the ablation/forcing
    /// constructor; prefer [`from_matrix`](Self::from_matrix).
    pub fn packed_from_matrix<M: RowMatrix + Sync + ?Sized>(m: &M, threads: usize) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let norms = Self::build_norms(m, threads);
        let words_per_row = words_for(cols);
        let mut words = vec![0u64; rows * words_per_row];
        let offsets: Vec<usize> = (0..=rows).map(|i| i * words_per_row).collect();
        parallel::par_fill_by_offsets(&mut words, &offsets, threads, |range, chunk| {
            for i in range.clone() {
                let base = (i - range.start) * words_per_row;
                for idx in m.row_indices(i) {
                    chunk[base + idx / 64] |= 1u64 << (idx % 64);
                }
            }
        });
        Self::with_repr(
            rows,
            cols,
            norms,
            Repr::Packed {
                words,
                words_per_row,
            },
        )
    }

    /// Builds the engine with the sparse (owned CSR copy)
    /// representation regardless of density — the ablation/forcing
    /// constructor; prefer [`from_matrix`](Self::from_matrix).
    pub fn sparse_from_matrix<M: RowMatrix + Sync + ?Sized>(m: &M, threads: usize) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let norms = Self::build_norms(m, threads);
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut acc = 0usize;
        indptr.push(0);
        for &nm in &norms {
            acc += nm as usize;
            indptr.push(acc);
        }
        let mut indices = vec![0u32; acc];
        parallel::par_fill_by_offsets(&mut indices, &indptr, threads, |range, chunk| {
            let mut k = 0usize;
            for i in range {
                for idx in m.row_indices(i) {
                    chunk[k] = idx as u32;
                    k += 1;
                }
            }
        });
        let starts = indptr[..rows].to_vec();
        let caps = norms.clone();
        Self::with_repr(
            rows,
            cols,
            norms,
            Repr::Sparse {
                starts,
                caps,
                indices,
                dead: 0,
            },
        )
    }

    fn build_norms<M: RowMatrix + Sync + ?Sized>(m: &M, threads: usize) -> Vec<u32> {
        parallel::par_map_rows(m.rows(), threads, |range| {
            range.map(|i| m.row_norm(i) as u32).collect()
        })
    }

    /// Finishes construction: counting-sorts rows into norm buckets
    /// (stable, so members ascend within each bucket).
    fn with_repr(rows: usize, cols: usize, norms: Vec<u32>, repr: Repr) -> Self {
        let max_norm = norms.iter().copied().max().unwrap_or(0) as usize;
        let mut bucket_indptr = vec![0usize; max_norm + 2];
        for &nm in &norms {
            bucket_indptr[nm as usize + 1] += 1;
        }
        for b in 0..=max_norm {
            bucket_indptr[b + 1] += bucket_indptr[b];
        }
        let mut cursor = bucket_indptr.clone();
        let mut bucket_members = vec![0u32; rows];
        for (i, &nm) in norms.iter().enumerate() {
            bucket_members[cursor[nm as usize]] = i as u32;
            cursor[nm as usize] += 1;
        }
        PackedRows {
            rows,
            cols,
            norms,
            repr,
            bucket_indptr,
            bucket_members,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Norm (popcount) of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    pub fn row_norm(&self, i: usize) -> usize {
        self.norms[i] as usize
    }

    /// The largest row norm (0 for an empty batch).
    pub fn max_norm(&self) -> usize {
        self.bucket_indptr.len() - 2
    }

    /// Row indices with exactly `norm` set bits, ascending (empty when
    /// `norm` exceeds [`max_norm`](Self::max_norm)).
    pub fn rows_with_norm(&self, norm: usize) -> &[u32] {
        if norm > self.max_norm() {
            return &[];
        }
        &self.bucket_members[self.bucket_indptr[norm]..self.bucket_indptr[norm + 1]]
    }

    /// `true` when the density key chose the packed word-block
    /// representation, `false` for the sparse fallback.
    pub fn is_packed(&self) -> bool {
        matches!(self.repr, Repr::Packed { .. })
    }

    /// Row `i`'s packed word block, or `None` under the sparse
    /// representation. Exposes row storage to the kernel-ablation
    /// benches and the sharded engine without copying.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    pub fn row_words(&self, i: usize) -> Option<&[u64]> {
        assert!(i < self.rows, "row {i} out of range");
        match &self.repr {
            Repr::Packed {
                words,
                words_per_row,
            } => Some(&words[i * words_per_row..(i + 1) * words_per_row]),
            Repr::Sparse { .. } => None,
        }
    }

    /// Row `i`'s sparse index span (ascending set columns), or `None`
    /// under the packed representation.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    pub fn row_index_slice(&self, i: usize) -> Option<&[u32]> {
        assert!(i < self.rows, "row {i} out of range");
        match &self.repr {
            Repr::Sparse {
                starts, indices, ..
            } => Some(&indices[starts[i]..starts[i] + self.norms[i] as usize]),
            Repr::Packed { .. } => None,
        }
    }

    /// [`bounded_hamming`](Self::bounded_hamming) across two engines
    /// over the same column space: `Some(Hamming)` when row `i` of
    /// `self` and row `j` of `other` are within `bound`, `None`
    /// otherwise. The norm-band rejection and the early-exit kernels
    /// work exactly as in the single-engine case; mixed representations
    /// fall back to a popcount-through probe (cold — the sharded
    /// builder derives every shard's representation from one global
    /// density key, so cross-shard queries stay same-representation).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ or either index is out of
    /// range.
    pub fn bounded_hamming_cross(
        &self,
        i: usize,
        other: &PackedRows,
        j: usize,
        bound: usize,
    ) -> Option<usize> {
        assert_eq!(
            self.cols, other.cols,
            "cross-engine query over mismatched column spaces"
        );
        if (self.norms[i].abs_diff(other.norms[j])) as usize > bound {
            return None;
        }
        match (&self.repr, &other.repr) {
            (
                Repr::Packed {
                    words: wa,
                    words_per_row: ra,
                },
                Repr::Packed {
                    words: wb,
                    words_per_row: rb,
                },
            ) => xor_popcount_within(&wa[i * ra..(i + 1) * ra], &wb[j * rb..(j + 1) * rb], bound),
            (
                Repr::Sparse {
                    starts: sa,
                    indices: ia,
                    ..
                },
                Repr::Sparse {
                    starts: sb,
                    indices: ib,
                    ..
                },
            ) => sparse_within(
                &ia[sa[i]..sa[i] + self.norms[i] as usize],
                &ib[sb[j]..sb[j] + other.norms[j] as usize],
                bound,
            ),
            (
                Repr::Packed {
                    words,
                    words_per_row,
                },
                Repr::Sparse {
                    starts, indices, ..
                },
            ) => mixed_within(
                &words[i * words_per_row..(i + 1) * words_per_row],
                self.norms[i] as usize,
                &indices[starts[j]..starts[j] + other.norms[j] as usize],
                bound,
            ),
            (
                Repr::Sparse {
                    starts, indices, ..
                },
                Repr::Packed {
                    words,
                    words_per_row,
                },
            ) => mixed_within(
                &words[j * words_per_row..(j + 1) * words_per_row],
                other.norms[j] as usize,
                &indices[starts[i]..starts[i] + self.norms[i] as usize],
                bound,
            ),
        }
    }

    /// `Some(Hamming(i, j))` when the distance is at most `bound`,
    /// `None` otherwise — the engine's core kernel. Pairs outside the
    /// norm band `|‖rᵢ‖ − ‖rⱼ‖| > bound` are rejected without touching
    /// row data; inside the band the distance loop early-exits as soon
    /// as the running count exceeds `bound`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn bounded_hamming(&self, i: usize, j: usize, bound: usize) -> Option<usize> {
        if (self.norms[i].abs_diff(self.norms[j])) as usize > bound {
            return None;
        }
        self.distance_within(i, j, bound)
    }

    /// Exact `Hamming(i, j)` with no cutoff, on the unbounded fast
    /// kernels ([`xor_popcount`] / [`sparse_mismatches`]) — no norm-band
    /// check and no per-step bound tests, which matters when the rows
    /// are short sparse lists and the bound bookkeeping would rival the
    /// merge itself. This is the adapter entry point for distance
    /// consumers that need a total metric — `cluster::PackedPointSet`
    /// routes HNSW and vp-tree evaluations through it. Agrees with
    /// [`bounded_hamming`](Self::bounded_hamming) at `bound = cols()`
    /// (pinned by the `hamming_is_the_unbounded_kernel` test).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn hamming(&self, i: usize, j: usize) -> usize {
        match &self.repr {
            Repr::Packed {
                words,
                words_per_row,
            } => {
                let a = &words[i * words_per_row..(i + 1) * words_per_row];
                let b = &words[j * words_per_row..(j + 1) * words_per_row];
                xor_popcount(a, b)
            }
            Repr::Sparse {
                starts, indices, ..
            } => {
                let a = &indices[starts[i]..starts[i] + self.norms[i] as usize];
                let b = &indices[starts[j]..starts[j] + self.norms[j] as usize];
                sparse_mismatches(a, b)
            }
        }
    }

    /// The bounded kernel *without* the norm-band check — only the
    /// early-exit distance loop. Same result as
    /// [`bounded_hamming`](Self::bounded_hamming); kept separate so the
    /// band path (which enumerates only in-band candidates) skips the
    /// redundant check and the pruning ablation can measure the band's
    /// contribution.
    fn distance_within(&self, i: usize, j: usize, bound: usize) -> Option<usize> {
        match &self.repr {
            Repr::Packed {
                words,
                words_per_row,
            } => {
                let a = &words[i * words_per_row..(i + 1) * words_per_row];
                let b = &words[j * words_per_row..(j + 1) * words_per_row];
                xor_popcount_within(a, b, bound)
            }
            Repr::Sparse {
                starts, indices, ..
            } => {
                let a = &indices[starts[i]..starts[i] + self.norms[i] as usize];
                let b = &indices[starts[j]..starts[j] + self.norms[j] as usize];
                sparse_within(a, b, bound)
            }
        }
    }

    /// Upper bound on the number of (ordered) candidate pairs the norm
    /// band leaves: Σ over rows of the band population. Drives the
    /// band-vs-scan path choice — a pure function of the input, so the
    /// choice (and hence the output) never depends on the thread count.
    fn band_candidates(&self, bound: usize) -> u128 {
        let buckets = self.bucket_indptr.len() - 1;
        let mut total = 0u128;
        for b in 0..buckets {
            let size = (self.bucket_indptr[b + 1] - self.bucket_indptr[b]) as u128;
            if size == 0 {
                continue;
            }
            let lo = b.saturating_sub(bound);
            let hi = (b + bound).min(buckets - 1);
            total += size * (self.bucket_indptr[hi + 1] - self.bucket_indptr[lo]) as u128;
        }
        total
    }

    /// `true` when the norm band is so unselective that enumerating
    /// bucket candidates per row would cost more than a straight tiled
    /// scan of all rows.
    fn prefer_scan(&self, bound: usize) -> bool {
        let n = self.rows as u128;
        2 * self.band_candidates(bound) >= n * n
    }

    /// Visits the rows whose norm lies within `bound` of `norm`, in
    /// ascending row order: a k-way merge of the (already ascending)
    /// bucket slices, `k ≤ 2·bound + 1`. Allocating wrapper around
    /// [`for_each_band_candidate_in`](Self::for_each_band_candidate_in)
    /// for one-shot callers.
    fn for_each_band_candidate(&self, norm: usize, bound: usize, f: impl FnMut(usize)) {
        let mut slices = Vec::new();
        self.for_each_band_candidate_in(norm, bound, &mut slices, f);
    }

    /// [`for_each_band_candidate`](Self::for_each_band_candidate) with
    /// the merge-cursor storage supplied by the caller, so the batched
    /// kernels reuse one scratch buffer across an entire worker chunk
    /// instead of allocating in the innermost per-query loop.
    fn for_each_band_candidate_in<'s>(
        &'s self,
        norm: usize,
        bound: usize,
        slices: &mut Vec<&'s [u32]>,
        mut f: impl FnMut(usize),
    ) {
        let lo = norm.saturating_sub(bound);
        let hi = (norm + bound).min(self.max_norm());
        slices.clear();
        slices.extend(
            (lo..=hi)
                .map(|b| self.rows_with_norm(b))
                .filter(|s| !s.is_empty()),
        );
        if slices.len() == 1 {
            // The common T4 case (bound 0): one bucket, no merge needed.
            for &j in slices[0] {
                f(j as usize);
            }
            return;
        }
        loop {
            let mut best: Option<usize> = None;
            for (si, s) in slices.iter().enumerate() {
                if !s.is_empty() && best.is_none_or(|b| s[0] < slices[b][0]) {
                    best = Some(si);
                }
            }
            let Some(si) = best else { break };
            f(slices[si][0] as usize);
            slices[si] = &slices[si][1..];
        }
    }

    /// All `n` bounded range queries at once: `out[i]` lists every `j`
    /// (including `i` itself) with `Hamming(i, j) ≤ bound`, ascending.
    ///
    /// Rows are chunked over `threads` workers via
    /// [`par_map_rows`](parallel::par_map_rows) and joined in range
    /// order — bit-identical at every thread count. Per query row the
    /// engine either walks the norm-band candidates (selective band) or
    /// falls back to a tiled block×block scan of all rows (candidate
    /// tiles sized to stay cache-resident, ascending so output order is
    /// unchanged); the choice is a pure function of the input.
    pub fn range_queries_within(&self, bound: usize, threads: usize) -> Vec<Vec<usize>> {
        if self.prefer_scan(bound) {
            return self.scan_queries(bound, threads, true);
        }
        parallel::par_map_rows(self.rows, threads, |range| {
            // Chunk-level scratch: the band-merge cursors and a reusable
            // row accumulator, so the per-row loop allocates only the
            // exact-size output row it returns.
            let mut slices: Vec<&[u32]> = Vec::new();
            let mut row: Vec<usize> = Vec::new();
            range
                .map(|i| {
                    row.clear();
                    let hits = &mut row;
                    self.for_each_band_candidate_in(
                        self.norms[i] as usize,
                        bound,
                        &mut slices,
                        |j| {
                            if j == i {
                                hits.push(i);
                            } else if self.distance_within(i, j, bound).is_some() {
                                hits.push(j);
                            }
                        },
                    );
                    row.as_slice().to_vec()
                })
                .collect()
        })
    }

    /// [`range_queries_within`](Self::range_queries_within) with norm
    /// pruning disabled: every pair goes through the early-exit distance
    /// loop. Identical output (the band is a pure optimization) — this
    /// is the pruning-ablation baseline (`abl-distkern`).
    pub fn range_queries_within_no_prune(&self, bound: usize, threads: usize) -> Vec<Vec<usize>> {
        self.scan_queries(bound, threads, false)
    }

    /// Tiled full scan behind both the unselective-band fallback and the
    /// pruning ablation: candidate rows are visited in ascending tiles
    /// (packed tiles sized to ~[`SCAN_TILE_WORDS`] words) with every
    /// query row of a worker's chunk run against the resident tile.
    fn scan_queries(&self, bound: usize, threads: usize, prune: bool) -> Vec<Vec<usize>> {
        let n = self.rows;
        let tile = match &self.repr {
            Repr::Packed { words_per_row, .. } => {
                (SCAN_TILE_WORDS / (*words_per_row).max(1)).max(1)
            }
            // Sparse rows have no fixed stride to tile against; one pass
            // over all candidates per query row is already index-local.
            Repr::Sparse { .. } => n.max(1),
        };
        parallel::par_map_rows(n, threads, |range| {
            let mut out: Vec<Vec<usize>> = range.clone().map(|_| Vec::new()).collect();
            let mut tile_start = 0usize;
            while tile_start < n {
                let tile_end = (tile_start + tile).min(n);
                for i in range.clone() {
                    let row_out = &mut out[i - range.start];
                    for j in tile_start..tile_end {
                        let d = if prune {
                            self.bounded_hamming(i, j, bound)
                        } else {
                            self.distance_within(i, j, bound)
                        };
                        if d.is_some() {
                            row_out.push(j);
                        }
                    }
                }
                tile_start = tile_end;
            }
            out
        })
    }

    /// Every unordered pair `(i, j)`, `i < j`, with
    /// `Hamming(i, j) ≤ bound`, plus the distance — ascending by `i`
    /// then `j` (the order of the sequential double loop). Chunked over
    /// `threads` workers and joined in range order: bit-identical at
    /// every thread count.
    pub fn pairs_within(&self, bound: usize, threads: usize) -> Vec<(usize, usize, usize)> {
        let scan = self.prefer_scan(bound);
        let chunks = parallel::par_map_ranges(self.rows, threads, |range| {
            let mut out = Vec::new();
            let mut slices: Vec<&[u32]> = Vec::new();
            for i in range {
                if scan {
                    for j in (i + 1)..self.rows {
                        if let Some(d) = self.bounded_hamming(i, j, bound) {
                            out.push((i, j, d));
                        }
                    }
                } else {
                    let hits = &mut out;
                    self.for_each_band_candidate_in(
                        self.norms[i] as usize,
                        bound,
                        &mut slices,
                        |j| {
                            if j > i {
                                if let Some(d) = self.distance_within(i, j, bound) {
                                    hits.push((i, j, d));
                                }
                            }
                        },
                    );
                }
            }
            out
        });
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }

    /// One bounded range query: every `(j, Hamming(i, j))` with distance
    /// at most `bound`, ascending by `j` and including `(i, 0)` itself —
    /// the single-row counterpart of
    /// [`range_queries_within`](Self::range_queries_within), used by
    /// incremental consumers to re-probe only a touched row's norm band
    /// (`≤ 2·bound + 1` buckets) after a [`patch_row`](Self::patch_row).
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    pub fn range_query_within(&self, i: usize, bound: usize) -> Vec<(usize, usize)> {
        let norm = self.norms[i] as usize;
        let lo = norm.saturating_sub(bound);
        let hi = (norm + bound).min(self.max_norm());
        // Presize to the band population: every hit comes from the band,
        // so the accumulator never reallocates mid-query.
        let mut out = Vec::with_capacity(self.bucket_indptr[hi + 1] - self.bucket_indptr[lo]);
        self.for_each_band_candidate(norm, bound, |j| {
            if j == i {
                out.push((i, 0));
            } else if let Some(d) = self.distance_within(i, j, bound) {
                out.push((j, d));
            }
        });
        out
    }

    /// Rewrites row `i` to exactly `new_indices` (strictly ascending
    /// column indices), updating its norm and moving it between norm
    /// buckets as needed. The packed representation zeroes and refills
    /// the row's word block in place; the sparse representation rewrites
    /// the span in place when the new contents fit its capacity, else
    /// relocates it to the tail (storage is compacted once relocated
    /// garbage dominates). Cost is O(row + band bookkeeping), never
    /// O(total nnz) outside amortized compaction.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`, if `new_indices` is not strictly
    /// ascending, or if any index is `>= cols()`.
    pub fn patch_row(&mut self, i: usize, new_indices: &[u32]) {
        assert!(i < self.rows, "patch_row: row {i} out of range");
        assert_row_indices(self.cols, new_indices);
        let old_norm = self.norms[i] as usize;
        let new_norm = new_indices.len();
        match &mut self.repr {
            Repr::Packed {
                words,
                words_per_row,
            } => {
                let block = &mut words[i * *words_per_row..(i + 1) * *words_per_row];
                block.fill(0);
                for &c in new_indices {
                    block[c as usize / 64] |= 1u64 << (c % 64);
                }
            }
            Repr::Sparse {
                starts,
                caps,
                indices,
                dead,
            } => {
                if new_norm <= caps[i] as usize {
                    indices[starts[i]..starts[i] + new_norm].copy_from_slice(new_indices);
                } else {
                    *dead += caps[i] as usize;
                    starts[i] = indices.len();
                    caps[i] = new_norm as u32;
                    indices.extend_from_slice(new_indices);
                }
            }
        }
        self.norms[i] = new_norm as u32;
        if new_norm != old_norm {
            self.bucket_remove(i, old_norm);
            self.bucket_insert(i, new_norm);
        }
        self.maybe_compact();
    }

    /// Appends a new row with exactly `new_indices` set (strictly
    /// ascending column indices) and registers it in its norm bucket.
    ///
    /// # Panics
    ///
    /// Panics if `new_indices` is not strictly ascending or any index is
    /// `>= cols()`.
    pub fn push_row(&mut self, new_indices: &[u32]) {
        assert_row_indices(self.cols, new_indices);
        let i = self.rows;
        let norm = new_indices.len();
        match &mut self.repr {
            Repr::Packed {
                words,
                words_per_row,
            } => {
                let base = words.len();
                words.resize(base + *words_per_row, 0);
                for &c in new_indices {
                    words[base + c as usize / 64] |= 1u64 << (c % 64);
                }
            }
            Repr::Sparse {
                starts,
                caps,
                indices,
                ..
            } => {
                starts.push(indices.len());
                caps.push(norm as u32);
                indices.extend_from_slice(new_indices);
            }
        }
        self.rows += 1;
        self.norms.push(norm as u32);
        self.bucket_insert(i, norm);
    }

    /// Widens the column space to `new_cols` (all rows keep their set
    /// bits; the new columns are zero everywhere). The packed
    /// representation re-lays its word blocks only when the per-row word
    /// count actually crosses a 64-bit boundary; the sparse
    /// representation is width-independent.
    ///
    /// # Panics
    ///
    /// Panics if `new_cols < cols()`.
    pub fn grow_cols(&mut self, new_cols: usize) {
        assert!(
            new_cols >= self.cols,
            "grow_cols: cannot shrink from {} to {new_cols} columns",
            self.cols
        );
        if let Repr::Packed {
            words,
            words_per_row,
        } = &mut self.repr
        {
            let new_wpr = words_for(new_cols);
            if new_wpr != *words_per_row {
                let old_wpr = *words_per_row;
                let mut grown = vec![0u64; self.rows * new_wpr];
                for i in 0..self.rows {
                    grown[i * new_wpr..i * new_wpr + old_wpr]
                        .copy_from_slice(&words[i * old_wpr..(i + 1) * old_wpr]);
                }
                *words = grown;
                *words_per_row = new_wpr;
            }
        }
        self.cols = new_cols;
    }

    /// Removes `row` from the norm bucket it occupies under `norm`, then
    /// trims trailing empty buckets so `bucket_indptr` keeps the exact
    /// canonical shape [`with_repr`](Self::with_repr) builds
    /// (`max live norm + 2` entries).
    fn bucket_remove(&mut self, row: usize, norm: usize) {
        let lo = self.bucket_indptr[norm];
        let hi = self.bucket_indptr[norm + 1];
        let pos = lo + self.bucket_members[lo..hi].partition_point(|&r| (r as usize) < row);
        debug_assert!(pos < hi && self.bucket_members[pos] as usize == row);
        self.bucket_members.remove(pos);
        for p in &mut self.bucket_indptr[norm + 1..] {
            *p -= 1;
        }
        while self.bucket_indptr.len() > 2 {
            let len = self.bucket_indptr.len();
            if self.bucket_indptr[len - 1] == self.bucket_indptr[len - 2] {
                self.bucket_indptr.pop();
            } else {
                break;
            }
        }
    }

    /// Inserts `row` into the bucket for `norm` (growing the bucket
    /// table if `norm` exceeds the current maximum), keeping members
    /// ascending within the bucket.
    fn bucket_insert(&mut self, row: usize, norm: usize) {
        while self.bucket_indptr.len() < norm + 2 {
            let last = self.bucket_indptr[self.bucket_indptr.len() - 1];
            self.bucket_indptr.push(last);
        }
        let lo = self.bucket_indptr[norm];
        let hi = self.bucket_indptr[norm + 1];
        let pos = lo + self.bucket_members[lo..hi].partition_point(|&r| (r as usize) < row);
        self.bucket_members.insert(pos, row as u32);
        for p in &mut self.bucket_indptr[norm + 1..] {
            *p += 1;
        }
    }

    /// Rebuilds the sparse storage contiguously (spans in row order,
    /// capacities reset to norms) once relocated garbage exceeds half the
    /// buffer — amortized O(1) per patch, and deterministic because the
    /// trigger is a pure function of the patch history.
    fn maybe_compact(&mut self) {
        let Repr::Sparse {
            starts,
            caps,
            indices,
            dead,
        } = &mut self.repr
        else {
            return;
        };
        if indices.len() < 1024 || *dead * 2 <= indices.len() {
            return;
        }
        let live: usize = self.norms.iter().map(|&n| n as usize).sum();
        let mut packed = Vec::with_capacity(live);
        for (i, s) in starts.iter_mut().enumerate() {
            let n = self.norms[i] as usize;
            let from = *s;
            *s = packed.len();
            packed.extend_from_slice(&indices[from..from + n]);
            caps[i] = self.norms[i];
        }
        *indices = packed;
        *dead = 0;
    }
}

/// Validates a caller-supplied row for the mutating API: strictly
/// ascending column indices, all below `cols`.
fn assert_row_indices(cols: usize, indices: &[u32]) {
    for (k, &c) in indices.iter().enumerate() {
        assert!(
            (c as usize) < cols,
            "column index {c} out of range for {cols} columns"
        );
        assert!(
            k == 0 || indices[k - 1] < c,
            "row indices must be strictly ascending"
        );
    }
}

/// Early-exit XOR-popcount over packed words — the live dense kernel.
///
/// Eight-word lanes at a time: each block sums eight independent
/// XOR-popcounts into a lane accumulator before the running distance is
/// checked once, giving LLVM a straight-line, bounds-check-free
/// reduction it auto-vectorizes on stable (no `unsafe`). Returns `None`
/// as soon as the running distance exceeds `bound`, `Some(distance)`
/// otherwise. Both slices must be the same length (the callers' rows
/// share one `words_per_row`).
pub fn xor_popcount_within(a: &[u64], b: &[u64], bound: usize) -> Option<usize> {
    let mut d = 0usize;
    for (ca, cb) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
        let mut lanes = 0u32;
        for l in 0..8 {
            lanes += (ca[l] ^ cb[l]).count_ones();
        }
        d += lanes as usize;
        if d > bound {
            return None;
        }
    }
    let tail = a.len() - a.len() % 8;
    for (x, y) in a[tail..].iter().zip(&b[tail..]) {
        d += (x ^ y).count_ones() as usize;
    }
    if d > bound {
        None
    } else {
        Some(d)
    }
}

/// The PR 5 dense kernel: XOR-popcount unrolled four words at a time
/// with the running distance checked per block. Kept verbatim as the
/// ablation baseline for [`xor_popcount_within`] (`abl-distkern`
/// compares the two on identical inputs).
pub fn xor_popcount_within_unrolled4(a: &[u64], b: &[u64], bound: usize) -> Option<usize> {
    let mut d = 0usize;
    let mut k = 0usize;
    let n = a.len();
    while k + 4 <= n {
        d += ((a[k] ^ b[k]).count_ones()
            + (a[k + 1] ^ b[k + 1]).count_ones()
            + (a[k + 2] ^ b[k + 2]).count_ones()
            + (a[k + 3] ^ b[k + 3]).count_ones()) as usize;
        if d > bound {
            return None;
        }
        k += 4;
    }
    while k < n {
        d += (a[k] ^ b[k]).count_ones() as usize;
        k += 1;
    }
    if d > bound {
        None
    } else {
        Some(d)
    }
}

/// Unbounded XOR-popcount over packed words: the straight reduction
/// with no running-distance checks, so LLVM vectorizes the whole loop.
/// The exact-total counterpart of [`xor_popcount_within`].
pub fn xor_popcount(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x ^ y).count_ones() as usize)
        .sum()
}

/// Unbounded sorted-merge mismatch count over two ascending index
/// lists, via `Hamming = |a| + |b| − 2·|a ∩ b|`. The intersection walk
/// is branchless in the body (the advance-and-count updates compile to
/// flag-setting arithmetic, not compare-and-jump), which beats the
/// three-way-branching bounded merge ([`sparse_within`]) on the short
/// unpredictable lists RBAC rows produce.
fn sparse_mismatches(a: &[u32], b: &[u32]) -> usize {
    let (mut x, mut y, mut inter) = (0usize, 0usize, 0usize);
    while x < a.len() && y < b.len() {
        let (av, bv) = (a[x], b[y]);
        inter += (av == bv) as usize;
        x += (av <= bv) as usize;
        y += (av >= bv) as usize;
    }
    a.len() + b.len() - 2 * inter
}

/// Bounded Hamming distance between a packed row (`words`, popcount
/// `packed_norm`) and a sparse ascending index list, via the identity
/// `Hamming = ‖a‖ + ‖b‖ − 2·g` with the dot product `g` counted by
/// probing each sparse index in the packed words. Cold path — only
/// mixed-representation cross-engine queries reach it (the sharded
/// builder derives every shard's representation from one global density
/// key).
fn mixed_within(words: &[u64], packed_norm: usize, indices: &[u32], bound: usize) -> Option<usize> {
    let mut dot = 0usize;
    for &c in indices {
        let w = c as usize / 64;
        if w < words.len() && (words[w] >> (c % 64)) & 1 == 1 {
            dot += 1;
        }
    }
    let d = packed_norm + indices.len() - 2 * dot;
    if d > bound {
        None
    } else {
        Some(d)
    }
}

/// Early-exit sorted-merge mismatch count over two ascending index
/// lists: every index present in exactly one list is one unit of
/// distance, and the walk aborts as soon as the count exceeds `bound`.
fn sparse_within(a: &[u32], b: &[u32], bound: usize) -> Option<usize> {
    let mut d = 0usize;
    let (mut x, mut y) = (0usize, 0usize);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Equal => {
                x += 1;
                y += 1;
            }
            std::cmp::Ordering::Less => {
                d += 1;
                if d > bound {
                    return None;
                }
                x += 1;
            }
            std::cmp::Ordering::Greater => {
                d += 1;
                if d > bound {
                    return None;
                }
                y += 1;
            }
        }
    }
    d += (a.len() - x) + (b.len() - y);
    if d > bound {
        None
    } else {
        Some(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::BitMatrix;
    use crate::sparse::CsrMatrix;

    /// 7 rows over 70 columns (not a multiple of 64): an empty row, a
    /// duplicate pair, a full-ish row, and near-duplicates at distance 1.
    fn sample() -> CsrMatrix {
        CsrMatrix::from_rows_of_indices(
            7,
            70,
            &[
                vec![0, 1, 65],
                vec![],
                vec![0, 1, 65],
                vec![0, 1, 65, 69],
                (0..70).step_by(2).collect(),
                vec![7],
                vec![],
            ],
        )
        .unwrap()
    }

    fn both_reprs(m: &CsrMatrix) -> Vec<PackedRows> {
        vec![
            PackedRows::packed_from_matrix(m, 3),
            PackedRows::sparse_from_matrix(m, 3),
        ]
    }

    #[test]
    fn bounded_hamming_agrees_with_row_hamming() {
        let m = sample();
        for p in both_reprs(&m) {
            for i in 0..m.n_rows() {
                for j in 0..m.n_rows() {
                    let d = m.row_hamming(i, j);
                    for bound in 0..6 {
                        let got = p.bounded_hamming(i, j, bound);
                        let expected = (d <= bound).then_some(d);
                        assert_eq!(got, expected, "i={i} j={j} bound={bound}");
                    }
                }
            }
        }
    }

    #[test]
    fn norms_buckets_and_accessors() {
        let m = sample();
        for p in both_reprs(&m) {
            assert_eq!(p.rows(), 7);
            assert_eq!(p.cols(), 70);
            for i in 0..7 {
                assert_eq!(p.row_norm(i), m.row_norm(i));
            }
            assert_eq!(p.max_norm(), 35);
            assert_eq!(p.rows_with_norm(0), &[1, 6]);
            assert_eq!(p.rows_with_norm(3), &[0, 2]);
            assert_eq!(p.rows_with_norm(35), &[4]);
            assert_eq!(p.rows_with_norm(99), &[] as &[u32]);
        }
    }

    #[test]
    fn density_key_picks_packed_for_dense_and_sparse_for_wide() {
        let dense =
            BitMatrix::from_rows_of_indices(3, 40, &[vec![0, 5], vec![1], vec![2, 3]]).unwrap();
        assert!(PackedRows::from_matrix(&dense, 1).is_packed());
        // 3 rows over 10k columns with 2 set bits each: packing would
        // cost 157 words per row for nothing.
        let wide =
            CsrMatrix::from_rows_of_indices(3, 10_000, &[vec![0, 9000], vec![17], vec![5, 6]])
                .unwrap();
        assert!(!PackedRows::from_matrix(&wide, 1).is_packed());
    }

    #[test]
    fn range_queries_match_brute_force_at_every_thread_count() {
        let m = sample();
        for bound in [0usize, 1, 2, 40, 100] {
            let brute: Vec<Vec<usize>> = (0..m.n_rows())
                .map(|i| {
                    (0..m.n_rows())
                        .filter(|&j| m.row_hamming(i, j) <= bound)
                        .collect()
                })
                .collect();
            for p in both_reprs(&m) {
                for threads in [1usize, 2, 4, 8] {
                    assert_eq!(
                        p.range_queries_within(bound, threads),
                        brute,
                        "bound={bound} threads={threads} packed={}",
                        p.is_packed()
                    );
                    assert_eq!(
                        p.range_queries_within_no_prune(bound, threads),
                        brute,
                        "no-prune bound={bound} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn pairs_within_match_brute_force_in_order() {
        let m = sample();
        for bound in [0usize, 1, 3, 70] {
            let mut brute = Vec::new();
            for i in 0..m.n_rows() {
                for j in (i + 1)..m.n_rows() {
                    let d = m.row_hamming(i, j);
                    if d <= bound {
                        brute.push((i, j, d));
                    }
                }
            }
            for p in both_reprs(&m) {
                for threads in [1usize, 2, 4, 8] {
                    assert_eq!(p.pairs_within(bound, threads), brute, "bound={bound}");
                }
            }
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty = CsrMatrix::zeros(0, 5);
        for p in both_reprs(&empty) {
            assert_eq!(p.rows(), 0);
            assert!(p.range_queries_within(1, 4).is_empty());
            assert!(p.pairs_within(1, 4).is_empty());
        }
        // Zero columns: every row is empty and identical.
        let zero_cols = CsrMatrix::zeros(3, 0);
        for p in both_reprs(&zero_cols) {
            assert_eq!(p.bounded_hamming(0, 2, 0), Some(0));
            assert_eq!(
                p.range_queries_within(0, 2),
                vec![vec![0, 1, 2]; 3],
                "packed={}",
                p.is_packed()
            );
        }
    }

    #[test]
    fn auto_repr_matches_forced_reprs() {
        let m = sample();
        let auto = PackedRows::from_matrix(&m, 2);
        let expected = PackedRows::packed_from_matrix(&m, 1).range_queries_within(2, 1);
        assert_eq!(auto.range_queries_within(2, 3), expected);
    }

    #[test]
    fn hamming_is_the_unbounded_kernel() {
        let m = sample();
        for p in both_reprs(&m) {
            for i in 0..m.rows() {
                for j in 0..m.rows() {
                    assert_eq!(
                        p.hamming(i, j),
                        m.row_hamming(i, j),
                        "i={i} j={j} packed={}",
                        p.is_packed()
                    );
                }
            }
        }
        // Zero columns: all rows identical at distance 0.
        let zero_cols = CsrMatrix::zeros(3, 0);
        for p in both_reprs(&zero_cols) {
            assert_eq!(p.hamming(0, 2), 0);
        }
    }

    #[test]
    #[should_panic]
    fn bounded_hamming_rejects_out_of_range() {
        let m = sample();
        PackedRows::from_matrix(&m, 1).bounded_hamming(0, 99, 1);
    }

    /// Builds a fresh engine from explicit row contents, forcing the
    /// requested representation — the rebuild oracle for the mutating
    /// API tests.
    fn rebuild(rows: &[Vec<u32>], cols: usize, packed: bool) -> PackedRows {
        let as_usize: Vec<Vec<usize>> = rows
            .iter()
            .map(|r| r.iter().map(|&c| c as usize).collect())
            .collect();
        let m = CsrMatrix::from_rows_of_indices(rows.len(), cols, &as_usize).unwrap();
        if packed {
            PackedRows::packed_from_matrix(&m, 2)
        } else {
            PackedRows::sparse_from_matrix(&m, 2)
        }
    }

    /// The patched engine must answer every query identically to an
    /// engine rebuilt from scratch, and its bucket structure must stay in
    /// the exact canonical shape `with_repr` produces.
    fn assert_matches_rebuilt(live: &PackedRows, rows: &[Vec<u32>], cols: usize, packed: bool) {
        let fresh = rebuild(rows, cols, packed);
        assert_eq!(live.rows(), fresh.rows());
        assert_eq!(live.cols(), fresh.cols());
        assert_eq!(live.norms, fresh.norms);
        assert_eq!(live.bucket_indptr, fresh.bucket_indptr);
        assert_eq!(live.bucket_members, fresh.bucket_members);
        for bound in [0usize, 1, 2, 5] {
            assert_eq!(
                live.range_queries_within(bound, 3),
                fresh.range_queries_within(bound, 3),
                "bound={bound} packed={packed}"
            );
            for i in 0..live.rows() {
                let batch: Vec<(usize, usize)> = (0..live.rows())
                    .filter_map(|j| fresh.bounded_hamming(i, j, bound).map(|d| (j, d)))
                    .collect();
                assert_eq!(
                    live.range_query_within(i, bound),
                    batch,
                    "i={i} bound={bound}"
                );
            }
        }
    }

    #[test]
    fn patch_row_tracks_rebuilds_through_an_edit_sequence() {
        for packed in [true, false] {
            let mut cols = 70usize;
            let mut rows: Vec<Vec<u32>> = vec![
                vec![0, 1, 65],
                vec![],
                vec![0, 1, 65],
                vec![0, 1, 65, 69],
                (0..70u32).step_by(2).collect(),
            ];
            let mut live = rebuild(&rows, cols, packed);
            // Edits cover: grow past the current max norm, shrink to
            // empty, in-place same-norm rewrite, sparse-span overflow
            // (norm grows past capacity), and a new-row append.
            let edits: Vec<(usize, Vec<u32>)> = vec![
                (1, vec![0, 1, 65]),                 // empty -> duplicate of rows 0/2
                (4, vec![]),                         // max-norm row -> empty (buckets shrink)
                (0, vec![2, 3, 64]),                 // same norm, different contents
                (3, (0..40u32).collect()),           // new max norm, span overflow
                (3, vec![69]),                       // shrink again
                (2, vec![0, 1, 65, 66, 67, 68, 69]), // overflow a second span
            ];
            for (i, contents) in edits {
                rows[i] = contents.clone();
                live.patch_row(i, &contents);
                assert_matches_rebuilt(&live, &rows, cols, packed);
            }
            rows.push(vec![5, 6]);
            live.push_row(&[5, 6]);
            assert_matches_rebuilt(&live, &rows, cols, packed);
            // Widen across a word boundary (70 -> 130 crosses 2 -> 3
            // words per packed row), then land an edge in the new space.
            cols = 130;
            live.grow_cols(cols);
            assert_matches_rebuilt(&live, &rows, cols, packed);
            rows[1] = vec![0, 1, 65, 128];
            live.patch_row(1, &rows[1]);
            assert_matches_rebuilt(&live, &rows, cols, packed);
        }
    }

    #[test]
    fn push_row_from_empty_engine() {
        for packed in [true, false] {
            let mut rows: Vec<Vec<u32>> = Vec::new();
            let mut live = rebuild(&rows, 40, packed);
            for contents in [vec![], vec![3, 7], vec![3, 7], vec![0]] {
                rows.push(contents.clone());
                live.push_row(&contents);
                assert_matches_rebuilt(&live, &rows, 40, packed);
            }
        }
    }

    #[test]
    fn sparse_compaction_preserves_answers() {
        // Repeatedly overflow spans so relocation garbage forces
        // maybe_compact's rebuild, then check answers still match.
        let mut rows: Vec<Vec<u32>> = (0..8).map(|_| (0..64u32).collect()).collect();
        let mut live = rebuild(&rows, 4096, false);
        for round in 1..6u32 {
            for (i, row) in rows.iter_mut().enumerate() {
                let contents: Vec<u32> = (0..64 + 32 * round).map(|c| c + round).collect();
                *row = contents.clone();
                live.patch_row(i, &contents);
            }
        }
        assert_matches_rebuilt(&live, &rows, 4096, false);
        if let Repr::Sparse { indices, dead, .. } = &live.repr {
            assert!(
                *dead * 2 <= indices.len(),
                "compaction should have bounded garbage: dead={dead} len={}",
                indices.len()
            );
        } else {
            panic!("forced sparse repr expected");
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn patch_row_rejects_unsorted_indices() {
        let m = sample();
        let mut p = PackedRows::sparse_from_matrix(&m, 1);
        p.patch_row(0, &[5, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_row_rejects_out_of_range_column() {
        let m = sample();
        let mut p = PackedRows::packed_from_matrix(&m, 1);
        p.push_row(&[70]);
    }

    /// The 8-lane kernel, the PR 5 unrolled-4 baseline, and the scalar
    /// distance agree on every pair and bound — including widths that
    /// exercise the 8-word blocks, the 4-word remainder, and the scalar
    /// tail.
    #[test]
    fn lane_kernels_agree_with_scalar_distance() {
        for cols in [1usize, 63, 64, 130, 257, 512, 700] {
            let m = CsrMatrix::from_rows_of_indices(
                4,
                cols,
                &[
                    (0..cols).step_by(3).collect(),
                    (0..cols).step_by(3).map(|c| c.min(cols - 1)).collect(),
                    vec![],
                    (0..cols).step_by(7).collect(),
                ],
            )
            .unwrap();
            let p = PackedRows::packed_from_matrix(&m, 2);
            for i in 0..4 {
                for j in 0..4 {
                    let a = p.row_words(i).expect("forced packed");
                    let b = p.row_words(j).expect("forced packed");
                    let d = m.row_hamming(i, j);
                    for bound in [0usize, 1, 2, d.saturating_sub(1), d, d + 1, cols] {
                        let expected = (d <= bound).then_some(d);
                        assert_eq!(xor_popcount_within(a, b, bound), expected);
                        assert_eq!(xor_popcount_within_unrolled4(a, b, bound), expected);
                    }
                }
            }
        }
    }

    /// Cross-engine bounded queries agree with the scalar distance for
    /// every representation pairing, including the mixed fallback.
    #[test]
    fn bounded_hamming_cross_agrees_for_all_repr_pairs() {
        let m = sample();
        let reprs = both_reprs(&m);
        for a in &reprs {
            for b in &reprs {
                for i in 0..m.n_rows() {
                    for j in 0..m.n_rows() {
                        let d = m.row_hamming(i, j);
                        for bound in [0usize, 1, 3, 40, 100] {
                            assert_eq!(
                                a.bounded_hamming_cross(i, b, j, bound),
                                (d <= bound).then_some(d),
                                "i={i} j={j} bound={bound} a_packed={} b_packed={}",
                                a.is_packed(),
                                b.is_packed()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "mismatched column spaces")]
    fn bounded_hamming_cross_rejects_width_mismatch() {
        let a = PackedRows::from_matrix(&sample(), 1);
        let narrow = CsrMatrix::from_rows_of_indices(2, 8, &[vec![0], vec![1]]).unwrap();
        let b = PackedRows::from_matrix(&narrow, 1);
        a.bounded_hamming_cross(0, &b, 0, 3);
    }

    #[test]
    fn row_accessors_expose_the_live_representation() {
        let m = sample();
        let packed = PackedRows::packed_from_matrix(&m, 1);
        let sparse = PackedRows::sparse_from_matrix(&m, 1);
        assert!(packed.row_words(0).is_some());
        assert!(packed.row_index_slice(0).is_none());
        assert!(sparse.row_words(0).is_none());
        assert_eq!(sparse.row_index_slice(0), Some(&[0u32, 1, 65][..]));
        assert_eq!(sparse.row_index_slice(1), Some(&[][..]));
    }
}
