//! Error type for matrix construction and access.

use std::error::Error;
use std::fmt;

/// Errors produced by matrix constructors and accessors.
///
/// All fallible operations in this crate return [`MatrixError`]; indexing
/// methods that take pre-validated indices panic instead and document it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatrixError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimension expected by the receiver.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
        /// What was being measured (e.g. `"row length"`).
        what: &'static str,
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it must stay under.
        bound: usize,
        /// Which axis the index addressed (e.g. `"row"`).
        axis: &'static str,
    },
    /// A sparse constructor received column indices that were not strictly
    /// increasing within a row.
    UnsortedIndices {
        /// Row in which the violation occurred.
        row: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch {
                expected,
                actual,
                what,
            } => write!(
                f,
                "dimension mismatch: expected {what} {expected}, got {actual}"
            ),
            MatrixError::IndexOutOfBounds { index, bound, axis } => {
                write!(f, "{axis} index {index} out of bounds (must be < {bound})")
            }
            MatrixError::UnsortedIndices { row } => {
                write!(f, "column indices in row {row} are not strictly increasing")
            }
        }
    }
}

impl Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MatrixError::DimensionMismatch {
            expected: 4,
            actual: 7,
            what: "row length",
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch: expected row length 4, got 7"
        );
        let e = MatrixError::IndexOutOfBounds {
            index: 9,
            bound: 3,
            axis: "row",
        };
        assert_eq!(e.to_string(), "row index 9 out of bounds (must be < 3)");
        let e = MatrixError::UnsortedIndices { row: 2 };
        assert_eq!(
            e.to_string(),
            "column indices in row 2 are not strictly increasing"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MatrixError>();
    }
}
