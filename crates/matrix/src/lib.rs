//! Binary matrix substrate for RBAC assignment data.
//!
//! The IAM Role Diet paper represents RBAC data as two binary assignment
//! matrices: the *Role-User Assignment Matrix* (RUAM) and the
//! *Role-Permission Assignment Matrix* (RPAM). Every detection algorithm in
//! the paper is a computation over rows of these matrices: row sums (degree
//! checks), row equality (duplicate roles) and row Hamming distance (similar
//! roles). This crate provides that substrate:
//!
//! * [`BitVec`] — a fixed-length bit vector packed into `u64` words, with
//!   `popcount`-based Hamming distance, set operations and index iteration.
//! * [`BitMatrix`] — a dense matrix of bits stored row-major in one
//!   contiguous buffer; rows are exposed as zero-copy [`RowRef`] views.
//! * [`CsrMatrix`] — a compressed sparse row binary matrix for real-org
//!   scale data (density around 1e-4), with a transpose that doubles as the
//!   inverted index used by the co-occurrence algorithm.
//! * [`RowMatrix`] — the trait detectors are generic over, so every
//!   algorithm runs unchanged on dense or sparse input.
//! * [`signature`] — collision-checked row hashing for the exact-duplicate
//!   fast path.
//! * [`ops`] — sparse co-occurrence products (`A · Aᵀ` restricted to pairs
//!   that share at least one column) and column sums.
//! * [`packed`] — the batched bounded-distance engine ([`PackedRows`]):
//!   norm-band pruning plus early-exit Hamming kernels over density-keyed
//!   packed-word or sparse-merge row storage, feeding every exact O(n²)
//!   T4/T5 stage.
//! * [`shard`] — the sharded, memory-budgeted driver over [`PackedRows`]
//!   ([`PackedShards`]): norm-contiguous shard blocks streamed as
//!   shard×shard tile passes under an explicit byte budget, bit-identical
//!   to the flat engine at every thread and shard count.
//! * [`setops`] — two-pointer set algebra over sorted index slices (the
//!   CSR row representation): intersection, containment and in-place
//!   difference without materializing dense bit rows — the O(nnz)
//!   coverage-state kernels of the lazy-greedy mining engine.
//! * [`parallel`] — the deterministic chunked map-reduce substrate every
//!   parallel stage in the workspace is built on.
//!
//! # Examples
//!
//! ```
//! use rolediet_matrix::{BitMatrix, RowMatrix};
//!
//! // Three roles over four users; roles 0 and 2 are identical.
//! let m = BitMatrix::from_rows_of_indices(3, 4, &[
//!     vec![0, 2],
//!     vec![1],
//!     vec![0, 2],
//! ]).unwrap();
//! assert_eq!(m.row_norm(0), 2);
//! assert_eq!(m.row_hamming(0, 2), 0);
//! assert_eq!(m.row_hamming(0, 1), 3);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bitvec;
pub mod dense;
pub mod error;
pub mod ops;
pub mod packed;
pub mod parallel;
pub mod setops;
pub mod shard;
pub mod signature;
pub mod sparse;
mod traits;
mod validate;

pub use bitvec::BitVec;
pub use dense::{BitMatrix, RowRef};
pub use error::MatrixError;
pub use packed::PackedRows;
pub use shard::{PackedShards, RowSubsetView, ShardPlan};
pub use signature::{hash_words, RowSignature, SignatureIndex};
pub use sparse::CsrMatrix;
pub use traits::RowMatrix;

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, MatrixError>;
