//! Collision-checked row signatures.
//!
//! The exact-duplicate fast path of the custom algorithm groups identical
//! rows by a content hash — the Rust analogue of the pandas `groupby` trick
//! used in the paper's notebook. A signature is 128 bits built from two
//! independent 64-bit FNV-1a streams, so accidental collisions are
//! negligible; nevertheless [`SignatureIndex::groups_verified`] re-checks
//! candidate groups bit-for-bit, making the result *exact* regardless of
//! hash quality (the paper stresses that the custom algorithm is fully
//! deterministic and misses nothing).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A 128-bit content signature of a matrix row.
///
/// Equal rows always produce equal signatures. Distinct rows produce equal
/// signatures only on a 2⁻¹²⁸-scale hash collision, and all consumers in
/// this workspace verify candidate groups before reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowSignature(pub u128);

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME_A: u64 = 0x0000_0100_0000_01b3;
// Second stream: different offset basis (split of SHA-256 initial values) to
// decorrelate the two 64-bit halves.
const FNV_OFFSET_B: u64 = 0x6a09_e667_bb67_ae85;
const FNV_PRIME_B: u64 = 0x0000_0100_0000_01b3;

/// Hashes a slice of row words into a [`RowSignature`].
///
/// Used by the [`RowMatrix::row_signature`](crate::RowMatrix::row_signature)
/// implementations; exposed for callers that maintain their own packed rows.
pub fn hash_words(words: &[u64]) -> RowSignature {
    let mut a = FNV_OFFSET_A;
    let mut b = FNV_OFFSET_B;
    for &w in words {
        for byte in w.to_le_bytes() {
            a = (a ^ u64::from(byte)).wrapping_mul(FNV_PRIME_A);
            b = (b ^ u64::from(byte).rotate_left(3)).wrapping_mul(FNV_PRIME_B);
        }
    }
    RowSignature((u128::from(a) << 64) | u128::from(b))
}

/// Hashes a strictly increasing list of set-bit indices into the same
/// signature space as [`hash_words`] applied to the equivalent packed row.
///
/// Sparse rows hash their `(index as u64)` stream padded to the row width;
/// to keep dense and sparse signatures comparable we instead materialize the
/// words lazily word-by-word, never allocating the full row.
pub fn hash_indices(cols: usize, indices: &[u32]) -> RowSignature {
    let mut a = FNV_OFFSET_A;
    let mut b = FNV_OFFSET_B;
    let words = cols.div_ceil(64);
    let mut it = indices.iter().peekable();
    for wi in 0..words {
        let mut w: u64 = 0;
        while let Some(&&idx) = it.peek() {
            let idx = idx as usize;
            if idx / 64 != wi {
                break;
            }
            w |= 1u64 << (idx % 64);
            it.next();
        }
        for byte in w.to_le_bytes() {
            a = (a ^ u64::from(byte)).wrapping_mul(FNV_PRIME_A);
            b = (b ^ u64::from(byte).rotate_left(3)).wrapping_mul(FNV_PRIME_B);
        }
    }
    RowSignature((u128::from(a) << 64) | u128::from(b))
}

/// Groups row indices by signature.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::{BitMatrix, RowMatrix, SignatureIndex};
///
/// let m = BitMatrix::from_rows_of_indices(4, 3, &[
///     vec![0], vec![1, 2], vec![0], vec![1, 2],
/// ]).unwrap();
/// let idx = SignatureIndex::build(&m);
/// let groups = idx.groups_verified(&m);
/// assert_eq!(groups, vec![vec![0, 2], vec![1, 3]]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SignatureIndex {
    buckets: HashMap<RowSignature, Vec<usize>>,
}

impl SignatureIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the index over all rows of a matrix.
    pub fn build<M: crate::RowMatrix>(matrix: &M) -> Self {
        let mut idx = SignatureIndex::new();
        for i in 0..matrix.rows() {
            idx.insert(matrix.row_signature(i), i);
        }
        idx
    }

    /// Like [`build`](Self::build), with the row hashing — the expensive
    /// part — split over `threads` workers via
    /// [`parallel`](crate::parallel). Signatures are inserted sequentially
    /// in row order afterwards, so bucket member order (and therefore
    /// every derived group list) is identical to `build` for every thread
    /// count.
    pub fn build_with<M: crate::RowMatrix + Sync>(matrix: &M, threads: usize) -> Self {
        let signatures = crate::parallel::par_map_rows(matrix.rows(), threads, |range| {
            range.map(|i| matrix.row_signature(i)).collect()
        });
        let mut idx = SignatureIndex::new();
        for (i, sig) in signatures.into_iter().enumerate() {
            idx.insert(sig, i);
        }
        idx
    }

    /// Inserts one `(signature, row)` pair.
    pub fn insert(&mut self, sig: RowSignature, row: usize) {
        self.buckets.entry(sig).or_default().push(row);
    }

    /// Number of distinct signatures.
    pub fn distinct(&self) -> usize {
        self.buckets.len()
    }

    /// Candidate duplicate groups (≥ 2 members, sorted by first member).
    ///
    /// Groups are *candidates*: members share a signature but have not been
    /// compared bit-for-bit. Use [`groups_verified`] for exact results.
    ///
    /// [`groups_verified`]: SignatureIndex::groups_verified
    pub fn candidate_groups(&self) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = self
            .buckets
            .values()
            .filter(|v| v.len() >= 2)
            .map(|v| {
                let mut v = v.clone();
                v.sort_unstable();
                v
            })
            .collect();
        groups.sort_unstable_by_key(|g| g[0]);
        groups
    }

    /// Exact duplicate groups: candidates are re-verified against the
    /// matrix, so a (vanishingly unlikely) hash collision splits into the
    /// correct sub-groups rather than producing a wrong merge.
    pub fn groups_verified<M: crate::RowMatrix>(&self, matrix: &M) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for group in self.candidate_groups() {
            let mut remaining = group;
            while remaining.len() >= 2 {
                let pivot = remaining[0];
                let (same, diff): (Vec<usize>, Vec<usize>) = remaining
                    .into_iter()
                    .partition(|&r| r == pivot || matrix.rows_equal(pivot, r));
                if same.len() >= 2 {
                    out.push(same);
                }
                remaining = diff;
            }
        }
        out.sort_unstable_by_key(|g| g[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::BitMatrix;
    use crate::sparse::CsrMatrix;
    use crate::RowMatrix;

    #[test]
    fn hash_words_distinguishes_rows() {
        assert_ne!(hash_words(&[1]), hash_words(&[2]));
        assert_ne!(hash_words(&[1, 0]), hash_words(&[0, 1]));
        assert_eq!(hash_words(&[7, 9]), hash_words(&[7, 9]));
    }

    #[test]
    fn hash_indices_matches_hash_words() {
        // Row of 130 bits with bits {0, 64, 129} set.
        let words = [1u64, 1u64, 0b10u64];
        let sig_dense = hash_words(&words);
        let sig_sparse = hash_indices(130, &[0, 64, 129]);
        assert_eq!(sig_dense, sig_sparse);
        // Empty row.
        assert_eq!(hash_indices(130, &[]), hash_words(&[0, 0, 0]));
    }

    #[test]
    fn dense_and_sparse_signatures_agree() {
        let rows = vec![vec![0usize, 65, 100], vec![], vec![0, 65, 100]];
        let d = BitMatrix::from_rows_of_indices(3, 128, &rows).unwrap();
        let s = CsrMatrix::from_rows_of_indices(3, 128, &rows).unwrap();
        for i in 0..3 {
            assert_eq!(d.row_signature(i), s.row_signature(i));
        }
    }

    #[test]
    fn groups_verified_finds_all_duplicate_groups() {
        let m = BitMatrix::from_rows_of_indices(
            6,
            4,
            &[vec![0], vec![1], vec![0], vec![2, 3], vec![1], vec![0]],
        )
        .unwrap();
        let groups = SignatureIndex::build(&m).groups_verified(&m);
        assert_eq!(groups, vec![vec![0, 2, 5], vec![1, 4]]);
    }

    #[test]
    fn collision_is_split_by_verification() {
        // Force a collision by inserting two different rows under one sig.
        let m =
            BitMatrix::from_rows_of_indices(4, 4, &[vec![0], vec![1], vec![0], vec![1]]).unwrap();
        let mut idx = SignatureIndex::new();
        let fake = RowSignature(42);
        for i in 0..4 {
            idx.insert(fake, i);
        }
        assert_eq!(idx.candidate_groups(), vec![vec![0, 1, 2, 3]]);
        let groups = idx.groups_verified(&m);
        assert_eq!(groups, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn parallel_build_groups_identically() {
        let m = BitMatrix::from_rows_of_indices(
            7,
            4,
            &[
                vec![0],
                vec![1],
                vec![0],
                vec![2, 3],
                vec![1],
                vec![0],
                vec![],
            ],
        )
        .unwrap();
        let seq = SignatureIndex::build(&m);
        for threads in [1, 2, 3, 8] {
            let par = SignatureIndex::build_with(&m, threads);
            assert_eq!(par.distinct(), seq.distinct(), "threads={threads}");
            assert_eq!(par.candidate_groups(), seq.candidate_groups());
            assert_eq!(par.groups_verified(&m), seq.groups_verified(&m));
        }
    }

    #[test]
    fn no_groups_when_all_rows_unique() {
        let m = BitMatrix::from_rows_of_indices(3, 4, &[vec![0], vec![1], vec![2]]).unwrap();
        let idx = SignatureIndex::build(&m);
        assert_eq!(idx.distinct(), 3);
        assert!(idx.groups_verified(&m).is_empty());
    }

    #[test]
    fn empty_matrix() {
        let m = BitMatrix::zeros(0, 0);
        let idx = SignatureIndex::build(&m);
        assert_eq!(idx.distinct(), 0);
        assert!(idx.groups_verified(&m).is_empty());
    }
}
