//! Structural validator for [`CsrMatrix`].
//!
//! The construction paths (`from_rows_of_indices`, `from_raw`, the
//! two-pass parallel kernel) establish the CSR invariants, but a matrix
//! can also arrive by deserialization — which fills the private fields
//! directly and checks nothing. [`CsrMatrix::validate`] re-derives every
//! invariant from the raw arrays so untrusted inputs and property tests
//! have a single authoritative check; `debug_assert_invariants` is now a
//! debug-build wrapper over it.

use crate::sparse::CsrMatrix;
use crate::traits::RowMatrix;

impl CsrMatrix {
    /// Checks every CSR structural invariant, returning the first
    /// violation as a human-readable message.
    ///
    /// Verified, in order:
    ///
    /// 1. `indptr.len() == rows + 1`, `indptr[0] == 0`, terminal value
    ///    equals `indices.len()`;
    /// 2. `indptr` is monotone non-decreasing (row widths are
    ///    non-negative and no row can exceed `cols` columns);
    /// 3. each row's column indices are strictly increasing (sorted,
    ///    duplicate-free) and below `cols`.
    ///
    /// This is the check to run on any matrix that did not come from a
    /// validating constructor — most importantly one produced by serde
    /// deserialization, which bypasses [`from_raw`](Self::from_raw).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first broken invariant and the row
    /// it was found in.
    pub fn validate(&self) -> Result<(), String> {
        let (rows, cols) = (self.rows(), self.cols());
        let (indptr, indices) = self.raw_parts();
        if indptr.len() != rows + 1 {
            return Err(format!(
                "indptr length {} != rows + 1 = {}",
                indptr.len(),
                rows + 1
            ));
        }
        if indptr[0] != 0 {
            return Err(format!("indptr must start at 0, got {}", indptr[0]));
        }
        let terminal = indptr[rows];
        if terminal != indices.len() {
            return Err(format!(
                "indptr terminal value {terminal} != nnz {}",
                indices.len()
            ));
        }
        // Monotonicity (and width bounds) over the whole array first:
        // only once `0 = indptr[0] <= … <= indptr[rows] = nnz` is
        // established is slicing `indices` by indptr pairs safe.
        for r in 0..rows {
            let (lo, hi) = (indptr[r], indptr[r + 1]);
            if lo > hi {
                return Err(format!("indptr not monotone at row {r} ({lo} > {hi})"));
            }
            let width = hi - lo;
            if width > cols {
                return Err(format!(
                    "row {r} claims {width} columns but the matrix has only {cols}"
                ));
            }
        }
        for r in 0..rows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!(
                        "columns of row {r} not strictly increasing ({} then {})",
                        pair[0], pair[1]
                    ));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= cols {
                    return Err(format!(
                        "column {last} of row {r} out of bounds (cols={cols})"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_matrices_pass() {
        let m = CsrMatrix::from_rows_of_indices(3, 5, &[vec![0, 4], vec![], vec![2]]).unwrap();
        assert_eq!(m.validate(), Ok(()));
        assert_eq!(CsrMatrix::zeros(0, 0).validate(), Ok(()));
        assert_eq!(CsrMatrix::zeros(4, 7).validate(), Ok(()));
    }

    /// Deserialization fills the private fields without any checks —
    /// exactly the hole `validate` exists to close.
    #[test]
    fn deserialized_garbage_is_caught() {
        let cases = [
            // non-monotone indptr (terminal still equals nnz)
            (
                r#"{"rows":2,"cols":4,"indptr":[0,2,1],"indices":[1]}"#,
                "not monotone",
            ),
            // terminal value disagrees with nnz
            (
                r#"{"rows":1,"cols":4,"indptr":[0,1],"indices":[1,3]}"#,
                "terminal",
            ),
            // unsorted row
            (
                r#"{"rows":1,"cols":4,"indptr":[0,2],"indices":[3,1]}"#,
                "strictly increasing",
            ),
            // duplicate column
            (
                r#"{"rows":1,"cols":4,"indptr":[0,2],"indices":[1,1]}"#,
                "strictly increasing",
            ),
            // out-of-bounds column
            (
                r#"{"rows":1,"cols":4,"indptr":[0,1],"indices":[9]}"#,
                "out of bounds",
            ),
            // wrong indptr length
            (
                r#"{"rows":3,"cols":4,"indptr":[0,1],"indices":[1]}"#,
                "indptr length",
            ),
        ];
        for (json, needle) in cases {
            let m: CsrMatrix = serde_json::from_str(json).expect("structurally valid JSON");
            let err = m.validate().expect_err(json);
            assert!(err.contains(needle), "{json}: got {err:?}");
        }
    }

    #[test]
    fn deserialized_valid_matrix_passes() {
        let json = r#"{"rows":2,"cols":4,"indptr":[0,2,3],"indices":[1,3,0]}"#;
        let m: CsrMatrix = serde_json::from_str(json).unwrap();
        assert_eq!(m.validate(), Ok(()));
    }

    // The delegation is compiled out in release builds, so the panic
    // can only be observed under debug assertions.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "CSR invariant violated")]
    fn debug_assert_invariants_panics_on_garbage() {
        let m: CsrMatrix =
            serde_json::from_str(r#"{"rows":1,"cols":4,"indptr":[0,2],"indices":[3,1]}"#).unwrap();
        m.debug_assert_invariants();
    }
}
