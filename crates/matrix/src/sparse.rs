//! Compressed sparse row binary matrices.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bitvec::BitVec;
use crate::dense::BitMatrix;
use crate::error::MatrixError;
use crate::signature::{hash_indices, RowSignature};
use crate::traits::RowMatrix;
use crate::Result;

/// A binary matrix in compressed sparse row (CSR) form.
///
/// Stores only the column indices of set bits: `indices[indptr[i]..indptr[i+1]]`
/// are the (strictly increasing) set columns of row `i`. The paper notes
/// that sparse storage is the practical representation at real-org scale —
/// the case-study RUAM is ~50,000 × 90,000 with density around 10⁻⁴, i.e.
/// half a gigabyte dense but only a few megabytes sparse.
///
/// Column indices are `u32`; RBAC datasets with more than 4 × 10⁹ users or
/// permissions are out of scope.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::{CsrMatrix, RowMatrix};
///
/// let m = CsrMatrix::from_rows_of_indices(2, 5, &[vec![1, 3], vec![3]]).unwrap();
/// assert_eq!(m.row_dot(0, 1), 1);
/// assert_eq!(m.row_hamming(0, 1), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
}

impl CsrMatrix {
    /// Creates an empty (all-zero) `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
        }
    }

    /// Builds a CSR matrix from per-row column-index lists.
    ///
    /// Rows are sorted and deduplicated internally, so input order does not
    /// matter.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `row_indices.len() !=
    /// rows` or [`MatrixError::IndexOutOfBounds`] if a column is `>= cols`.
    pub fn from_rows_of_indices(
        rows: usize,
        cols: usize,
        row_indices: &[Vec<usize>],
    ) -> Result<Self> {
        if row_indices.len() != rows {
            return Err(MatrixError::DimensionMismatch {
                expected: rows,
                actual: row_indices.len(),
                what: "row count",
            });
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::new();
        let mut scratch: Vec<usize> = Vec::new();
        for cols_of_row in row_indices {
            scratch.clear();
            scratch.extend_from_slice(cols_of_row);
            scratch.sort_unstable();
            scratch.dedup();
            for &c in &scratch {
                if c >= cols {
                    return Err(MatrixError::IndexOutOfBounds {
                        index: c,
                        bound: cols,
                        axis: "column",
                    });
                }
                indices.push(c as u32);
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
        })
    }

    /// Builds a CSR matrix from raw CSR arrays.
    ///
    /// # Errors
    ///
    /// Returns an error if `indptr` is malformed (wrong length, not
    /// monotone, or not ending at `indices.len()`), if any column is out of
    /// range, or if a row's indices are not strictly increasing.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
    ) -> Result<Self> {
        if indptr.len() != rows + 1 {
            return Err(MatrixError::DimensionMismatch {
                expected: rows + 1,
                actual: indptr.len(),
                what: "indptr length",
            });
        }
        if indptr[0] != 0 || *indptr.last().expect("len >= 1") != indices.len() {
            return Err(MatrixError::DimensionMismatch {
                expected: indices.len(),
                actual: *indptr.last().expect("len >= 1"),
                what: "indptr terminal value",
            });
        }
        for r in 0..rows {
            if indptr[r] > indptr[r + 1] {
                return Err(MatrixError::UnsortedIndices { row: r });
            }
            let row = &indices[indptr[r]..indptr[r + 1]];
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(MatrixError::UnsortedIndices { row: r });
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= cols {
                    return Err(MatrixError::IndexOutOfBounds {
                        index: last as usize,
                        bound: cols,
                        axis: "column",
                    });
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
        })
    }

    /// Builds a CSR matrix with the two-pass parallel kernel, from a
    /// function yielding each row's column indices in strictly
    /// increasing order.
    ///
    /// Pass one counts every row's columns and an exclusive prefix sum
    /// turns the counts into `indptr`; pass two writes each worker's
    /// rows directly into disjoint slices of the single `indices`
    /// allocation ([`par_fill_by_offsets`](crate::parallel::par_fill_by_offsets)).
    /// Unlike [`from_rows_of_indices`](Self::from_rows_of_indices) there
    /// is no per-row `Vec`, no sort and no re-copy — the kernel the
    /// graph projections use at real-org scale. Output is bit-identical
    /// for every thread count because both passes split by row range
    /// and workers write non-overlapping slices.
    ///
    /// `row_of` is called twice per row (once per pass) and must yield
    /// the same sequence both times; sources like `BTreeSet` iterators
    /// satisfy the ordering contract for free. The iterator must be
    /// [`ExactSizeIterator`] so the count pass reads each row's width in
    /// O(1) instead of walking it — the fill pass verifies the claimed
    /// lengths element by element.
    ///
    /// # Panics
    ///
    /// Panics if a row yields an out-of-bounds or non-increasing column,
    /// or yields different sequences in the two passes. Worker panics
    /// are re-raised verbatim, so the message is identical for every
    /// thread count.
    pub fn from_row_iter_two_pass<F, I>(rows: usize, cols: usize, threads: usize, row_of: F) -> Self
    where
        F: Fn(usize) -> I + Sync,
        I: IntoIterator<Item = u32>,
        I::IntoIter: ExactSizeIterator,
    {
        let counts: Vec<usize> = crate::parallel::par_map_rows(rows, threads, |range| {
            range.map(|i| row_of(i).into_iter().len()).collect()
        });
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0usize);
        for &c in &counts {
            indptr.push(indptr.last().expect("nonempty") + c);
        }
        let nnz = *indptr.last().expect("nonempty");
        let mut indices = vec![0u32; nnz];
        crate::parallel::par_fill_by_offsets(&mut indices, &indptr, threads, |range, slice| {
            let base = indptr[range.start];
            for i in range {
                let hi = indptr[i + 1] - base;
                let mut k = indptr[i] - base;
                let mut prev: Option<u32> = None;
                for c in row_of(i) {
                    assert!(
                        (c as usize) < cols,
                        "column index {c} out of bounds in row {i}"
                    );
                    assert!(
                        prev.is_none() || prev < Some(c),
                        "columns of row {i} must be strictly increasing"
                    );
                    assert!(k < hi, "row {i} yielded more columns than it counted");
                    slice[k] = c;
                    prev = Some(c);
                    k += 1;
                }
                assert_eq!(k, hi, "row {i} yielded fewer columns than it counted");
            }
        });
        let m = CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
        };
        m.debug_assert_invariants();
        m
    }

    /// Debug-build check of the CSR invariants — a free-in-release
    /// wrapper over [`validate`](Self::validate).
    ///
    /// Compiled to nothing in release builds. The construction kernels
    /// call this on their results; tests call it directly on matrices
    /// from every build path.
    ///
    /// # Panics
    ///
    /// In debug builds, panics with the [`validate`](Self::validate)
    /// message if any invariant is broken.
    pub fn debug_assert_invariants(&self) {
        if !cfg!(debug_assertions) {
            return;
        }
        if let Err(msg) = self.validate() {
            panic!("CSR invariant violated: {msg}");
        }
    }

    /// Raw CSR arrays, for the structural validator.
    pub(crate) fn raw_parts(&self) -> (&[usize], &[u32]) {
        (&self.indptr, &self.indices)
    }

    /// Converts a dense matrix to CSR.
    pub fn from_dense(dense: &BitMatrix) -> Self {
        let mut indptr = Vec::with_capacity(dense.n_rows() + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        for i in 0..dense.n_rows() {
            for j in dense.row(i).iter_ones() {
                indices.push(j as u32);
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: dense.n_rows(),
            cols: dense.n_cols(),
            indptr,
            indices,
        }
    }

    /// Converts to a dense [`BitMatrix`].
    ///
    /// Beware of scale: a 50,000 × 90,000 result allocates ~560 MB.
    pub fn to_dense(&self) -> BitMatrix {
        let mut m = BitMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for &j in self.row(i) {
                m.set(i, j as usize, true);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// The sorted column indices of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Returns the bit at (`row`, `col`) via binary search.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(col < self.cols, "column index {col} out of bounds");
        self.row(row).binary_search(&(col as u32)).is_ok()
    }

    /// Transposes the matrix. For RUAM the transpose is the user→roles
    /// *inverted index* that drives the co-occurrence algorithm.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols];
        for &j in &self.indices {
            counts[j as usize] += 1;
        }
        let mut indptr = Vec::with_capacity(self.cols + 1);
        indptr.push(0usize);
        for c in &counts {
            indptr.push(indptr.last().expect("nonempty") + c);
        }
        let mut cursor = indptr[..self.cols].to_vec();
        let mut indices = vec![0u32; self.indices.len()];
        for i in 0..self.rows {
            for &j in self.row(i) {
                let j = j as usize;
                indices[cursor[j]] = i as u32;
                cursor[j] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
        }
    }

    /// Transposes on `threads` worker threads via
    /// [`parallel`](crate::parallel). Output is byte-identical to
    /// [`transpose`](Self::transpose) for every thread count.
    ///
    /// Three phases: (1) each worker counting-sorts its row range into a
    /// local column-grouped copy — the same scatter the sequential
    /// transpose runs, restricted to a chunk of rows; (2) the global
    /// `indptr` is prefix-summed from the per-worker counts; (3) workers
    /// stitch disjoint column ranges of the output, copying each column's
    /// segments in worker order — ascending rows, exactly the sequential
    /// order.
    pub fn transpose_with(&self, threads: usize) -> CsrMatrix {
        if threads.max(1) == 1 || self.indices.is_empty() {
            return self.transpose();
        }
        let locals: Vec<(Vec<usize>, Vec<u32>)> =
            crate::parallel::par_map_ranges(self.rows, threads, |range| {
                let mut counts = vec![0usize; self.cols];
                for i in range.clone() {
                    for &j in self.row(i) {
                        counts[j as usize] += 1;
                    }
                }
                let mut local_indptr = Vec::with_capacity(self.cols + 1);
                local_indptr.push(0usize);
                for &c in &counts {
                    local_indptr.push(local_indptr.last().expect("nonempty") + c);
                }
                let mut cursor = local_indptr[..self.cols].to_vec();
                let mut local = vec![0u32; *local_indptr.last().expect("nonempty")];
                for i in range {
                    for &j in self.row(i) {
                        let j = j as usize;
                        local[cursor[j]] = i as u32;
                        cursor[j] += 1;
                    }
                }
                (local_indptr, local)
            });
        let mut indptr = Vec::with_capacity(self.cols + 1);
        indptr.push(0usize);
        for c in 0..self.cols {
            let col_total: usize = locals.iter().map(|(p, _)| p[c + 1] - p[c]).sum();
            indptr.push(indptr.last().expect("nonempty") + col_total);
        }
        let indices = crate::parallel::par_map_rows(self.cols, threads, |col_range| {
            let mut out = Vec::with_capacity(indptr[col_range.end] - indptr[col_range.start]);
            for c in col_range {
                for (local_indptr, local) in &locals {
                    out.extend_from_slice(&local[local_indptr[c]..local_indptr[c + 1]]);
                }
            }
            out
        });
        let t = CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
        };
        t.debug_assert_invariants();
        t
    }

    /// Memory footprint of the payload in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.indices.len() * std::mem::size_of::<u32>()
            + self.indptr.len() * std::mem::size_of::<usize>()
    }

    /// Intersection size of two sorted index slices (merge join).
    pub(crate) fn sorted_dot(a: &[u32], b: &[u32]) -> usize {
        let (mut ia, mut ib, mut n) = (0usize, 0usize, 0usize);
        while ia < a.len() && ib < b.len() {
            match a[ia].cmp(&b[ib]) {
                std::cmp::Ordering::Less => ia += 1,
                std::cmp::Ordering::Greater => ib += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    ia += 1;
                    ib += 1;
                }
            }
        }
        n
    }
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix({}x{}, nnz={})",
            self.rows,
            self.cols,
            self.indices.len()
        )
    }
}

impl RowMatrix for CsrMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn row_norm(&self, i: usize) -> usize {
        assert!(i < self.rows, "row index {i} out of bounds");
        self.indptr[i + 1] - self.indptr[i]
    }

    fn row_hamming(&self, i: usize, j: usize) -> usize {
        let dot = Self::sorted_dot(self.row(i), self.row(j));
        self.row_norm(i) + self.row_norm(j) - 2 * dot
    }

    fn row_dot(&self, i: usize, j: usize) -> usize {
        Self::sorted_dot(self.row(i), self.row(j))
    }

    fn rows_equal(&self, i: usize, j: usize) -> bool {
        self.row(i) == self.row(j)
    }

    fn row_indices(&self, i: usize) -> Vec<usize> {
        self.row(i).iter().map(|&c| c as usize).collect()
    }

    fn row_bitvec(&self, i: usize) -> BitVec {
        let mut v = BitVec::new(self.cols);
        for &c in self.row(i) {
            v.set(c as usize, true);
        }
        v
    }

    fn row_signature(&self, i: usize) -> RowSignature {
        hash_indices(self.cols, self.row(i))
    }

    fn col_sums(&self) -> Vec<usize> {
        let mut sums = vec![0usize; self.cols];
        for &j in &self.indices {
            sums[j as usize] += 1;
        }
        sums
    }

    fn col_sums_with(&self, threads: usize) -> Vec<usize> {
        if threads.max(1) == 1 {
            return self.col_sums();
        }
        // Specialized over the default: workers scan the contiguous index
        // slice of their row range instead of allocating per-row vectors.
        let partials = crate::parallel::par_map_ranges(self.rows, threads, |range| {
            let mut sums = vec![0usize; self.cols];
            for &j in &self.indices[self.indptr[range.start]..self.indptr[range.end]] {
                sums[j as usize] += 1;
            }
            sums
        });
        let mut sums = vec![0usize; self.cols];
        for partial in partials {
            for (s, p) in sums.iter_mut().zip(partial) {
                *s += p;
            }
        }
        sums
    }

    fn nnz(&self) -> usize {
        self.indices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_rows_of_indices(4, 6, &[vec![0, 2, 4], vec![5], vec![4, 2, 0], vec![]])
            .unwrap()
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let m = CsrMatrix::from_rows_of_indices(1, 5, &[vec![3, 1, 3, 0]]).unwrap();
        assert_eq!(m.row(0), &[0, 1, 3]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn construction_validates_bounds_and_shape() {
        assert!(CsrMatrix::from_rows_of_indices(2, 3, &[vec![0]]).is_err());
        assert!(CsrMatrix::from_rows_of_indices(1, 3, &[vec![3]]).is_err());
    }

    #[test]
    fn from_raw_validation() {
        assert!(CsrMatrix::from_raw(2, 4, vec![0, 1, 2], vec![1, 3]).is_ok());
        // wrong indptr length
        assert!(CsrMatrix::from_raw(2, 4, vec![0, 2], vec![1, 3]).is_err());
        // non-monotone indptr
        assert!(CsrMatrix::from_raw(2, 4, vec![0, 2, 1], vec![1, 3]).is_err());
        // terminal mismatch
        assert!(CsrMatrix::from_raw(2, 4, vec![0, 1, 1], vec![1, 3]).is_err());
        // unsorted row
        assert!(CsrMatrix::from_raw(1, 4, vec![0, 2], vec![3, 1]).is_err());
        // duplicate within row
        assert!(CsrMatrix::from_raw(1, 4, vec![0, 2], vec![1, 1]).is_err());
        // column out of range
        assert!(CsrMatrix::from_raw(1, 4, vec![0, 1], vec![4]).is_err());
    }

    #[test]
    fn get_and_row_access() {
        let m = sample();
        assert!(m.get(0, 2));
        assert!(!m.get(0, 1));
        assert!(!m.get(3, 0));
        assert_eq!(m.row(2), &[0, 2, 4]);
    }

    #[test]
    fn norms_hamming_dot() {
        let m = sample();
        assert_eq!(m.row_norm(0), 3);
        assert_eq!(m.row_norm(3), 0);
        assert_eq!(m.row_hamming(0, 2), 0);
        assert_eq!(m.row_hamming(0, 1), 4);
        assert_eq!(m.row_dot(0, 2), 3);
        assert_eq!(m.row_dot(0, 1), 0);
        assert!(m.rows_equal(0, 2));
        assert!(!m.rows_equal(0, 3));
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(CsrMatrix::from_dense(&d), m);
        // Trait-level equivalence
        for i in 0..4 {
            assert_eq!(m.row_norm(i), d.row_norm(i));
            for j in 0..4 {
                assert_eq!(m.row_hamming(i, j), d.row_hamming(i, j));
                assert_eq!(m.row_dot(i, j), d.row_dot(i, j));
            }
        }
        assert_eq!(m.col_sums(), d.col_sums());
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 6);
        assert_eq!(t.n_cols(), 4);
        assert_eq!(t.to_dense(), m.to_dense().transpose());
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_row_is_inverted_index() {
        let m = sample();
        let t = m.transpose();
        // Column 4 of m is set in rows 0 and 2.
        assert_eq!(t.row(4), &[0, 2]);
        // Column 1 of m is empty.
        assert!(t.row(1).is_empty());
    }

    #[test]
    fn parallel_transpose_is_byte_identical() {
        let samples = [
            sample(),
            CsrMatrix::zeros(7, 5),
            CsrMatrix::zeros(0, 0),
            CsrMatrix::from_rows_of_indices(
                6,
                4,
                &[
                    vec![3],
                    vec![0, 1, 2, 3],
                    vec![],
                    vec![2],
                    vec![0, 3],
                    vec![1],
                ],
            )
            .unwrap(),
        ];
        for m in &samples {
            let seq = m.transpose();
            for threads in [1, 2, 3, 4, 8, 50] {
                let par = m.transpose_with(threads);
                assert_eq!(par.indptr, seq.indptr, "{m:?} threads={threads}");
                assert_eq!(par.indices, seq.indices, "{m:?} threads={threads}");
                assert_eq!(par.rows, seq.rows);
                assert_eq!(par.cols, seq.cols);
            }
        }
    }

    #[test]
    fn parallel_col_sums_match_sequential() {
        let m = sample();
        for threads in [1, 2, 3, 8] {
            assert_eq!(m.col_sums_with(threads), m.col_sums());
        }
        assert_eq!(CsrMatrix::zeros(0, 3).col_sums_with(4), vec![0, 0, 0]);
    }

    #[test]
    fn two_pass_build_matches_from_rows_of_indices() {
        let row_sets: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![0, 2, 4], vec![5], vec![0, 2, 4], vec![]],
            vec![],
            vec![vec![], vec![], vec![]],
            vec![vec![0, 1, 2, 3, 4, 5]],
        ];
        for rows in &row_sets {
            let as_usize: Vec<Vec<usize>> = rows
                .iter()
                .map(|r| r.iter().map(|&c| c as usize).collect())
                .collect();
            let reference = CsrMatrix::from_rows_of_indices(rows.len(), 6, &as_usize).unwrap();
            for threads in [1, 2, 3, 4, 8, 50] {
                let m = CsrMatrix::from_row_iter_two_pass(rows.len(), 6, threads, |i| {
                    rows[i].iter().copied()
                });
                assert_eq!(m, reference, "rows={rows:?} threads={threads}");
                m.debug_assert_invariants();
            }
        }
    }

    #[test]
    #[should_panic(expected = "column index 6 out of bounds in row 1")]
    fn two_pass_build_rejects_out_of_bounds_columns() {
        let rows = [vec![0u32], vec![6]];
        CsrMatrix::from_row_iter_two_pass(2, 6, 1, |i| rows[i].iter().copied());
    }

    #[test]
    #[should_panic(expected = "columns of row 0 must be strictly increasing")]
    fn two_pass_build_rejects_unsorted_rows() {
        let rows = [vec![3u32, 1]];
        CsrMatrix::from_row_iter_two_pass(1, 6, 1, |i| rows[i].iter().copied());
    }

    #[test]
    #[should_panic(expected = "columns of row 0 must be strictly increasing")]
    fn two_pass_build_panic_parity_across_threads() {
        // The substrate re-raises worker panics verbatim, so the parallel
        // path fails with exactly the sequential message.
        let rows = [vec![3u32, 1], vec![0], vec![1], vec![2], vec![3], vec![4]];
        CsrMatrix::from_row_iter_two_pass(6, 6, 4, |i| rows[i].iter().copied());
    }

    #[test]
    #[should_panic(expected = "yielded fewer columns than it counted")]
    fn two_pass_build_rejects_unstable_row_functions() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // A row function that shrinks between the count and fill passes.
        let calls = AtomicUsize::new(0);
        CsrMatrix::from_row_iter_two_pass(1, 6, 1, |_| {
            if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                vec![0u32, 1]
            } else {
                vec![0u32]
            }
        });
    }

    #[test]
    fn zeros_and_payload() {
        let m = CsrMatrix::zeros(3, 100);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row_norm(2), 0);
        assert!(m.payload_bytes() >= 4 * std::mem::size_of::<usize>());
    }

    #[test]
    fn sorted_dot_cases() {
        assert_eq!(CsrMatrix::sorted_dot(&[], &[]), 0);
        assert_eq!(CsrMatrix::sorted_dot(&[1, 2, 3], &[]), 0);
        assert_eq!(CsrMatrix::sorted_dot(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(CsrMatrix::sorted_dot(&[1, 5], &[2, 6]), 0);
    }

    #[test]
    fn debug_and_serde() {
        let m = sample();
        assert_eq!(format!("{m:?}"), "CsrMatrix(4x6, nnz=7)");
        let json = serde_json::to_string(&m).unwrap();
        let back: CsrMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
