//! Sorted-index set operations.
//!
//! The sparse kernels keep row contents as strictly increasing `u32`
//! index slices (the CSR convention of [`CsrMatrix`](crate::CsrMatrix)).
//! These helpers are the set algebra over that representation: two-pointer
//! merges that never materialize a dense bit row, so callers' memory
//! stays proportional to the indices actually present (O(nnz)) instead
//! of the enclosing width. The lazy-greedy mining cover engine is the
//! main consumer: coverage state, candidate gains and containment checks
//! all reduce to these three walks.
//!
//! All inputs must be sorted ascending and duplicate-free; the operations
//! are pure and allocation-free except where an output vector is
//! documented.

/// Size of the intersection of two sorted, duplicate-free slices.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::setops::intersect_count;
///
/// assert_eq!(intersect_count(&[1, 3, 5, 9], &[2, 3, 4, 5]), 2);
/// assert_eq!(intersect_count(&[], &[1, 2]), 0);
/// ```
pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Intersection of two sorted, duplicate-free slices as a new vector.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::setops::intersect;
///
/// assert_eq!(intersect(&[0, 1, 7], &[0, 2, 7]), vec![0, 7]);
/// ```
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Whether sorted, duplicate-free `a` is a subset of sorted,
/// duplicate-free `b`.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::setops::is_subset;
///
/// assert!(is_subset(&[1, 5], &[0, 1, 4, 5]));
/// assert!(!is_subset(&[1, 6], &[0, 1, 4, 5]));
/// assert!(is_subset(&[], &[3]));
/// ```
pub fn is_subset(a: &[u32], b: &[u32]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() {
        // Each unmatched element of `a` must still fit in b's tail.
        if b.len() - j < a.len() - i {
            return false;
        }
        match b[j].cmp(&a[i]) {
            std::cmp::Ordering::Less => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Greater => return false,
        }
    }
    true
}

/// Removes every element of sorted `remove` from sorted `v` in place,
/// returning how many elements were removed.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::setops::difference_in_place;
///
/// let mut v = vec![0, 2, 4, 6];
/// assert_eq!(difference_in_place(&mut v, &[2, 3, 6]), 2);
/// assert_eq!(v, vec![0, 4]);
/// ```
pub fn difference_in_place(v: &mut Vec<u32>, remove: &[u32]) -> usize {
    if v.is_empty() || remove.is_empty() {
        return 0;
    }
    let before = v.len();
    let mut j = 0usize;
    v.retain(|&x| {
        while j < remove.len() && remove[j] < x {
            j += 1;
        }
        !(j < remove.len() && remove[j] == x)
    });
    before - v.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_count_matches_intersect_len() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[], &[]),
            (&[1], &[]),
            (&[1, 2, 3], &[2, 3, 4]),
            (&[0, 10, 20], &[5, 10, 15, 20, 25]),
            (&[7], &[7]),
        ];
        for (a, b) in cases {
            assert_eq!(intersect_count(a, b), intersect(a, b).len());
            assert_eq!(intersect_count(a, b), intersect_count(b, a));
        }
    }

    #[test]
    fn subset_cases() {
        assert!(is_subset(&[], &[]));
        assert!(is_subset(&[], &[1]));
        assert!(is_subset(&[1, 2, 3], &[1, 2, 3]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(!is_subset(&[0], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[1, 2, 3, 4], &[1, 2, 3]));
    }

    #[test]
    fn difference_removes_and_counts() {
        let mut v = vec![1, 2, 3, 4, 5];
        assert_eq!(difference_in_place(&mut v, &[0, 2, 4, 9]), 2);
        assert_eq!(v, vec![1, 3, 5]);
        assert_eq!(difference_in_place(&mut v, &[]), 0);
        let mut empty: Vec<u32> = Vec::new();
        assert_eq!(difference_in_place(&mut empty, &[1]), 0);
        let mut all = vec![1, 2];
        assert_eq!(difference_in_place(&mut all, &[1, 2]), 2);
        assert!(all.is_empty());
    }

    #[test]
    fn agrees_with_bitvec_oracle() {
        use crate::BitVec;
        // Cross-check the sorted-slice walks against the dense BitVec
        // algebra on a deterministic family of index sets.
        let sets: Vec<Vec<u32>> = (0u32..8)
            .map(|k| (0u32..32).filter(|x| (x * (k + 3)) % 7 < 3).collect())
            .collect();
        for a in &sets {
            for b in &sets {
                let ba =
                    BitVec::from_indices(32, &a.iter().map(|&x| x as usize).collect::<Vec<_>>())
                        .unwrap();
                let bb =
                    BitVec::from_indices(32, &b.iter().map(|&x| x as usize).collect::<Vec<_>>())
                        .unwrap();
                assert_eq!(intersect_count(a, b), ba.intersection_count(&bb).unwrap());
                assert_eq!(is_subset(a, b), ba.is_subset_of(&bb).unwrap());
                let mut v = a.clone();
                let removed = difference_in_place(&mut v, b);
                let mut d = ba.clone();
                d.difference_with(&bb).unwrap();
                assert_eq!(removed, a.len() - d.count_ones());
                assert_eq!(
                    v,
                    d.to_indices().iter().map(|&x| x as u32).collect::<Vec<_>>()
                );
            }
        }
    }
}
