//! Co-occurrence products over sparse assignment matrices.
//!
//! The custom algorithm of the paper is built on the co-occurrence matrix
//! `C = A·Aᵀ` where `A` is RUAM (or RPAM): `C[i][j] = gⁱʲ` counts the users
//! shared by roles `i` and `j`, and `C[i][i] = |Rⁱ|` is the role norm.
//! Materializing `C` densely is quadratic in roles, so [`for_each_cooccurring_pair`]
//! streams only the *non-zero off-diagonal* entries by walking the inverted
//! index (the transpose of `A`): for every column, every pair of rows
//! sharing it is accumulated once. Memory stays `O(rows)`.

use crate::sparse::CsrMatrix;
use crate::traits::RowMatrix;

/// Streams every pair of rows `(i, j)` with `i < j` that share at least one
/// column, together with the co-occurrence count `gⁱʲ`.
///
/// `transpose` must be `matrix.transpose()`; it is taken as a parameter so
/// callers that make several passes (e.g. the T4 and T5 detectors) can
/// reuse it.
///
/// The visit order is ascending `i`, then ascending `j`.
///
/// # Panics
///
/// Panics if `transpose` dimensions do not match `matrix` transposed.
///
/// # Examples
///
/// ```
/// use rolediet_matrix::{CsrMatrix, ops};
///
/// let m = CsrMatrix::from_rows_of_indices(3, 2, &[vec![0, 1], vec![1], vec![]]).unwrap();
/// let t = m.transpose();
/// let mut pairs = Vec::new();
/// ops::for_each_cooccurring_pair(&m, &t, |i, j, g| pairs.push((i, j, g)));
/// assert_eq!(pairs, vec![(0, 1, 1)]);
/// ```
pub fn for_each_cooccurring_pair<F>(matrix: &CsrMatrix, transpose: &CsrMatrix, visit: F)
where
    F: FnMut(usize, usize, usize),
{
    for_each_cooccurring_pair_in(matrix, transpose, 0..matrix.n_rows(), visit);
}

/// Validates that `transpose` has the dimensions of `matrix` transposed.
///
/// Shared by the sequential and parallel pair-streaming paths so both
/// reject a mismatched transpose with an identical panic. Public so
/// downstream parallel callers can validate on the caller thread before
/// any worker spawns (a zero-row matrix spawns no workers at all).
pub fn assert_transpose_shape(matrix: &CsrMatrix, transpose: &CsrMatrix) {
    assert_eq!(
        matrix.n_rows(),
        transpose.n_cols(),
        "transpose shape mismatch"
    );
    assert_eq!(
        matrix.n_cols(),
        transpose.n_rows(),
        "transpose shape mismatch"
    );
}

/// Range-parameterized core of [`for_each_cooccurring_pair`]: streams the
/// co-occurring pairs whose *lower* row index `i` lies in `range`.
///
/// Each pair `(i, j)` with `i < j` belongs to exactly one lower index, so
/// disjoint ranges stream disjoint pair sets: running this over the chunks
/// of [`parallel::split_ranges`](crate::parallel::split_ranges) and
/// concatenating in range order reproduces the sequential stream exactly.
/// The sorted visit order (ascending `i`, then ascending `j`) is a
/// guarantee of this helper, on every path.
///
/// # Panics
///
/// Panics if `transpose` dimensions do not match `matrix` transposed, or
/// if `range` ends beyond the row count.
pub fn for_each_cooccurring_pair_in<F>(
    matrix: &CsrMatrix,
    transpose: &CsrMatrix,
    range: std::ops::Range<usize>,
    mut visit: F,
) where
    F: FnMut(usize, usize, usize),
{
    assert_transpose_shape(matrix, transpose);
    let rows = matrix.n_rows();
    assert!(range.end <= rows, "row range out of bounds");
    // Per-row accumulator with a touched-list so clearing is O(#touched),
    // not O(rows), between outer iterations.
    let mut acc: Vec<usize> = vec![0; rows];
    let mut touched: Vec<usize> = Vec::new();
    for i in range {
        for &col in matrix.row(i) {
            for &j in transpose.row(col as usize) {
                let j = j as usize;
                if j <= i {
                    continue;
                }
                if acc[j] == 0 {
                    touched.push(j);
                }
                acc[j] += 1;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            visit(i, j, acc[j]);
            acc[j] = 0;
        }
        touched.clear();
    }
}

/// Collects the co-occurring pairs whose count satisfies `predicate(i, j, g)`.
///
/// Convenience wrapper over [`for_each_cooccurring_pair`].
pub fn cooccurring_pairs_where<P>(
    matrix: &CsrMatrix,
    transpose: &CsrMatrix,
    mut predicate: P,
) -> Vec<(usize, usize, usize)>
where
    P: FnMut(usize, usize, usize) -> bool,
{
    let mut out = Vec::new();
    for_each_cooccurring_pair(matrix, transpose, |i, j, g| {
        if predicate(i, j, g) {
            out.push((i, j, g));
        }
    });
    out
}

/// Builds the full dense co-occurrence matrix `C` with `C[i][i] = |Rⁱ|`,
/// exactly as printed in Section III-C of the paper.
///
/// Quadratic in rows — intended for inspection, tests and small examples,
/// not for production-scale matrices.
#[allow(clippy::needless_range_loop)] // i/j are matrix coordinates on both sides
pub fn gram_matrix<M: RowMatrix>(matrix: &M) -> Vec<Vec<usize>> {
    let n = matrix.rows();
    let mut c = vec![vec![0usize; n]; n];
    for i in 0..n {
        c[i][i] = matrix.row_norm(i);
        for j in (i + 1)..n {
            let g = matrix.row_dot(i, j);
            c[i][j] = g;
            c[j][i] = g;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The RUAM of Figure 1 of the paper:
    /// R01={U01}, R02={U02,U03}, R03={}, R04={U02,U03}, R05={U04}.
    fn paper_ruam() -> CsrMatrix {
        CsrMatrix::from_rows_of_indices(5, 4, &[vec![0], vec![1, 2], vec![], vec![1, 2], vec![3]])
            .unwrap()
    }

    #[test]
    fn gram_matches_paper_example() {
        // Section III-C prints exactly this co-occurrence matrix.
        let expected = vec![
            vec![1, 0, 0, 0, 0],
            vec![0, 2, 0, 2, 0],
            vec![0, 0, 0, 0, 0],
            vec![0, 2, 0, 2, 0],
            vec![0, 0, 0, 0, 1],
        ];
        assert_eq!(gram_matrix(&paper_ruam()), expected);
        assert_eq!(gram_matrix(&paper_ruam().to_dense()), expected);
    }

    #[test]
    fn streaming_pairs_match_gram_off_diagonal() {
        let m = paper_ruam();
        let t = m.transpose();
        let mut pairs = Vec::new();
        for_each_cooccurring_pair(&m, &t, |i, j, g| pairs.push((i, j, g)));
        assert_eq!(pairs, vec![(1, 3, 2)]);
    }

    #[test]
    fn pair_counts_equal_row_dot_on_random_like_input() {
        let rows = vec![
            vec![0, 1, 2],
            vec![1, 2, 3],
            vec![0, 3],
            vec![4],
            vec![0, 1, 2, 3, 4],
        ];
        let m = CsrMatrix::from_rows_of_indices(5, 5, &rows).unwrap();
        let t = m.transpose();
        let mut seen = std::collections::HashMap::new();
        for_each_cooccurring_pair(&m, &t, |i, j, g| {
            assert!(i < j);
            assert!(seen.insert((i, j), g).is_none(), "pair visited twice");
        });
        for i in 0..5 {
            for j in (i + 1)..5 {
                let g = m.row_dot(i, j);
                assert_eq!(seen.get(&(i, j)).copied().unwrap_or(0), g, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn predicate_filtering() {
        let m = paper_ruam();
        let t = m.transpose();
        let all = cooccurring_pairs_where(&m, &t, |_, _, _| true);
        assert_eq!(all.len(), 1);
        let none = cooccurring_pairs_where(&m, &t, |_, _, g| g > 2);
        assert!(none.is_empty());
    }

    #[test]
    fn empty_matrix_streams_nothing() {
        let m = CsrMatrix::zeros(4, 3);
        let t = m.transpose();
        let mut n = 0;
        for_each_cooccurring_pair(&m, &t, |_, _, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    #[should_panic(expected = "transpose shape mismatch")]
    fn wrong_transpose_panics() {
        let m = CsrMatrix::zeros(4, 3);
        let not_t = CsrMatrix::zeros(4, 3);
        for_each_cooccurring_pair(&m, &not_t, |_, _, _| {});
    }

    #[test]
    fn visit_order_is_sorted() {
        let rows = vec![vec![0], vec![0], vec![0], vec![0]];
        let m = CsrMatrix::from_rows_of_indices(4, 1, &rows).unwrap();
        let t = m.transpose();
        let mut pairs = Vec::new();
        for_each_cooccurring_pair(&m, &t, |i, j, g| pairs.push((i, j, g)));
        assert_eq!(
            pairs,
            vec![
                (0, 1, 1),
                (0, 2, 1),
                (0, 3, 1),
                (1, 2, 1),
                (1, 3, 1),
                (2, 3, 1)
            ]
        );
    }

    #[test]
    fn ranged_visit_order_is_sorted_within_every_chunk() {
        // Columns are shared in an order that makes the raw accumulator
        // walk touch higher j before lower j; the helper must still emit
        // ascending j for each i, in every chunk.
        let rows = vec![vec![0, 1], vec![1], vec![0], vec![0, 1], vec![1, 0]];
        let m = CsrMatrix::from_rows_of_indices(5, 2, &rows).unwrap();
        let t = m.transpose();
        for range in [0..5, 0..2, 2..5, 1..4] {
            let mut pairs = Vec::new();
            for_each_cooccurring_pair_in(&m, &t, range.clone(), |i, j, g| {
                pairs.push((i, j, g));
            });
            let mut sorted = pairs.clone();
            sorted.sort_unstable();
            assert_eq!(pairs, sorted, "unsorted emission for range {range:?}");
            assert!(pairs.iter().all(|&(i, _, _)| range.contains(&i)));
        }
    }

    #[test]
    fn chunked_ranges_concatenate_to_the_full_stream() {
        let rows = vec![
            vec![0, 1, 2],
            vec![1, 2, 3],
            vec![0, 3],
            vec![4],
            vec![0, 1, 2, 3, 4],
            vec![2],
        ];
        let m = CsrMatrix::from_rows_of_indices(6, 5, &rows).unwrap();
        let t = m.transpose();
        let mut full = Vec::new();
        for_each_cooccurring_pair(&m, &t, |i, j, g| full.push((i, j, g)));
        for threads in [1, 2, 3, 4, 8] {
            let chunked: Vec<(usize, usize, usize)> = crate::parallel::split_ranges(6, threads)
                .into_iter()
                .flat_map(|range| {
                    let mut part = Vec::new();
                    for_each_cooccurring_pair_in(&m, &t, range, |i, j, g| {
                        part.push((i, j, g));
                    });
                    part
                })
                .collect();
            assert_eq!(chunked, full, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "transpose shape mismatch")]
    fn ranged_helper_rejects_wrong_transpose() {
        let m = CsrMatrix::zeros(4, 3);
        let not_t = CsrMatrix::zeros(4, 3);
        for_each_cooccurring_pair_in(&m, &not_t, 1..2, |_, _, _| {});
    }
}
