//! Periodic cleanup: the paper's operational model. The detector runs on
//! a schedule; each run consolidates what it found; approximate methods
//! that miss pairs in one run catch them in the next, converging to the
//! exact optimum.
//!
//! ```text
//! cargo run --release --example periodic_cleanup
//! ```

use rolediet::core::periodic::simulate_periodic_cleanup;
use rolediet::core::{DetectionConfig, Pipeline, Strategy};
use rolediet::synth::profiles::generate_ing_like;

fn main() {
    let org = generate_ing_like(0.03, 13);
    println!(
        "organization: {} users, {} roles, {} permissions\n",
        org.graph.n_users(),
        org.graph.n_roles(),
        org.graph.n_permissions()
    );

    for strategy in [
        Strategy::Custom,
        Strategy::hnsw_default(),
        Strategy::minhash_default(),
    ] {
        let (trace, final_graph) =
            simulate_periodic_cleanup(&org.graph, DetectionConfig::with_strategy(strategy), 25);
        println!("strategy {}:", strategy.name());
        for r in &trace.rounds {
            println!(
                "  run {}: found {} duplicate groups, removed {} roles ({} remain)",
                r.round, r.groups_found, r.roles_removed, r.roles_remaining
            );
        }
        // What an exact audit of the converged graph still finds:
        let residual = Pipeline::new(DetectionConfig::default()).run(&final_graph);
        println!(
            "  converged after {} run(s); residual duplicate groups: {}\n",
            trace.n_rounds(),
            residual.same_user_groups.len() + residual.same_permission_groups.len()
        );
        assert!(trace.converged);
    }
    println!("all strategies converge to a duplicate-free role set —");
    println!("the approximate ones just may need more runs, as the paper argues.");
}
