//! Lifecycle: inefficiencies accumulating through organizational churn,
//! and the effect of running the role diet periodically.
//!
//! The paper's premise is temporal — RBAC data degrades through manual
//! management. This example simulates years of hires, leavers, role
//! clones and asset decommissions, audits the graph every "quarter", and
//! contrasts an organization that never cleans up with one that runs the
//! detector + consolidation each quarter.
//!
//! ```text
//! cargo run --release --example lifecycle
//! ```

use rolediet::core::periodic::simulate_periodic_cleanup;
use rolediet::core::{DetectionConfig, Pipeline, Report, Side};
use rolediet::synth::churn::{ChurnConfig, ChurnSimulator};

const QUARTERS: usize = 12;
const EVENTS_PER_QUARTER: usize = 400;

fn main() {
    let cfg = DetectionConfig {
        skip_similarity: true,
        ..DetectionConfig::default()
    };

    // --- organization A: never cleans up -------------------------------
    let mut neglected = ChurnSimulator::new(ChurnConfig {
        seed: 42,
        ..ChurnConfig::default()
    });
    println!("quarter | neglected: findings roles | dieting: findings roles (removed)");
    // --- organization B: same churn stream, quarterly diet -------------
    let mut dieting = ChurnSimulator::new(ChurnConfig {
        seed: 42,
        ..ChurnConfig::default()
    });
    let mut dieted_graph = dieting.graph().clone();

    for quarter in 1..=QUARTERS {
        neglected.run(EVENTS_PER_QUARTER);
        dieting.run(EVENTS_PER_QUARTER);

        let neglect_report = Pipeline::new(cfg).run(neglected.graph());

        // The dieting org runs the cleanup on its churned graph each
        // quarter; consolidation is idempotent on the already-merged
        // parts, so the trace counts this quarter's removable roles.
        let (trace, cleaned) = simulate_periodic_cleanup(dieting.graph(), cfg, 5);
        dieted_graph = cleaned;
        let diet_report = Pipeline::new(cfg).run(&dieted_graph);

        println!(
            "{quarter:>7} | {:>18} {:>5} | {:>16} {:>5} ({:>3})",
            count(&neglect_report),
            neglected.graph().n_roles(),
            count(&diet_report),
            dieted_graph.n_roles(),
            trace.total_removed(),
        );
    }

    let final_neglect = Pipeline::new(cfg).run(neglected.graph());
    let final_diet = Pipeline::new(cfg).run(&dieted_graph);
    println!(
        "\nafter {QUARTERS} quarters: neglected org has {} findings across {} roles;",
        count(&final_neglect),
        neglected.graph().n_roles()
    );
    println!(
        "the dieting org has {} findings across {} roles — duplicates never pile up.",
        count(&final_diet),
        dieted_graph.n_roles()
    );
    assert!(final_diet.roles_in_same_groups(Side::User) == 0);
    assert!(final_diet.roles_in_same_groups(Side::Permission) == 0);
}

fn count(report: &Report) -> usize {
    report.total_findings()
}
