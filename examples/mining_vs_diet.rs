//! Regenerate or refine? Role mining vs. the role diet.
//!
//! The paper's related work (D'Antoni et al.) argues that *refining*
//! existing policies beats *regenerating* them from scratch. This example
//! measures both on the same organization:
//!
//! * **diet** — keep the existing roles, merge exact duplicates and drop
//!   provably redundant ones (access preserved by construction and
//!   verified);
//! * **mining** — discard the roles and greedily mine a minimal role set
//!   that exactly covers the effective user→permission relation.
//!
//! Mining usually wins on raw role count (it is free to invent any
//! grouping) but loses everything the existing roles encode — names,
//! owners, business meaning — which is why the paper's framework only
//! proposes combinations of existing roles.
//!
//! ```text
//! cargo run --release --example mining_vs_diet
//! ```

use std::time::Instant;

use rolediet::core::periodic::simulate_periodic_cleanup;
use rolediet::core::suggest::redundant_single_link_roles;
use rolediet::core::{DetectionConfig, Pipeline};
use rolediet::mining::{mine_greedy_cover, verify_exact_cover, MiningConfig};
use rolediet::synth::profiles::small_org;

fn main() {
    let org = rolediet::synth::generate_org(small_org(17));
    let graph = &org.graph;
    println!(
        "organization: {} users, {} roles, {} permissions, {} effective cells\n",
        graph.n_users(),
        graph.n_roles(),
        graph.n_permissions(),
        rolediet_matrix_nnz(graph)
    );

    // --- the role diet: refine what exists ----------------------------
    let t0 = Instant::now();
    let (trace, cleaned) = simulate_periodic_cleanup(graph, DetectionConfig::default(), 10);
    let report = Pipeline::new(DetectionConfig::default()).run(&cleaned);
    let redundant = redundant_single_link_roles(&cleaned, &report);
    let diet_time = t0.elapsed();
    let diet_roles = cleaned.n_roles() - redundant.len();
    println!(
        "diet   : {} -> {} roles ({} duplicate merges + {} redundant single-link) in {:.2?}",
        graph.n_roles(),
        diet_roles,
        trace.total_removed(),
        redundant.len(),
        diet_time
    );

    // --- role mining: regenerate from the UPAM -------------------------
    let t0 = Instant::now();
    let upam = graph.upam_sparse();
    let mined = mine_greedy_cover(&upam, &MiningConfig::default())
        .expect("generated candidate pools always cover the matrix");
    let mining_time = t0.elapsed();
    verify_exact_cover(&upam, &mined.roles).expect("mined cover must be exact");
    println!(
        "mining : {} -> {} roles ({} candidates considered) in {:.2?}",
        graph.n_roles(),
        mined.n_roles(),
        mined.candidates_considered,
        mining_time
    );

    println!(
        "\nboth models grant byte-identical access; the mined one has no\n\
         names, owners or departments — every role would need re-review.\n\
         The diet keeps all of that and still removed {} roles.",
        graph.n_roles() - diet_roles
    );
}

fn rolediet_matrix_nnz(graph: &rolediet::model::TripartiteGraph) -> usize {
    rolediet::matrix::RowMatrix::nnz(&graph.upam_sparse())
}
