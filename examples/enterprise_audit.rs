//! Enterprise audit: reproduce the Section IV-B case study on a scaled
//! copy of the paper's 60,000-employee organization, and check the
//! detected counts against the planted ground truth.
//!
//! ```text
//! cargo run --release --example enterprise_audit            # 5% scale
//! cargo run --release --example enterprise_audit -- 1.0     # full scale
//! ```

use std::time::Instant;

use rolediet::core::{DetectionConfig, Pipeline, Side};
use rolediet::model::DatasetStats;
use rolediet::synth::profiles::generate_ing_like;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a float in (0, 1]"))
        .unwrap_or(0.05);

    println!("generating ing-like organization at scale {scale}…");
    let t0 = Instant::now();
    let org = generate_ing_like(scale, 7);
    println!("generated in {:.2?}", t0.elapsed());

    let stats = DatasetStats::compute(&org.graph);
    println!("{stats}\n");

    let t0 = Instant::now();
    let report = Pipeline::new(DetectionConfig::default()).run(&org.graph);
    println!("full detection (custom strategy) in {:.2?}\n", t0.elapsed());
    print!("{}", report.summary_table());

    // The synthetic substitution lets us do what the paper could not:
    // check every detected count against planted truth.
    println!("\nplanted-vs-detected cross-check:");
    check(
        "standalone users",
        org.truth.standalone_users.len(),
        report.standalone_users.len(),
    );
    check(
        "standalone permissions",
        org.truth.standalone_permissions.len(),
        report.standalone_permissions.len(),
    );
    check(
        "userless roles",
        org.truth.userless_roles.len(),
        report.userless_roles.len(),
    );
    check(
        "permless roles",
        org.truth.permless_roles.len(),
        report.permless_roles.len(),
    );
    check(
        "single-user roles",
        org.truth.single_user_roles.len(),
        report.single_user_roles.len(),
    );
    check(
        "single-permission roles",
        org.truth.single_permission_roles.len(),
        report.single_permission_roles.len(),
    );
    // Group findings: detected must cover at least the planted pairs
    // (coincidental extra duplicates are possible, missing ones are not —
    // the custom strategy is exact).
    covered(
        "roles in same-user groups",
        2 * org.truth.same_user_pairs.len(),
        report.roles_in_same_groups(Side::User),
    );
    covered(
        "roles in same-permission groups",
        2 * org.truth.same_permission_pairs.len(),
        report.roles_in_same_groups(Side::Permission),
    );
    covered(
        "roles in similar-user pairs",
        2 * org.truth.similar_user_pairs.len(),
        report.roles_in_similar_pairs(Side::User),
    );
    covered(
        "roles in similar-permission pairs",
        2 * org.truth.similar_permission_pairs.len(),
        report.roles_in_similar_pairs(Side::Permission),
    );
    println!("\nall cross-checks passed");
}

fn check(name: &str, planted: usize, detected: usize) {
    println!("  {name:<34} planted={planted:<8} detected={detected}");
    assert_eq!(planted, detected, "{name}: exact count expected");
}

fn covered(name: &str, planted: usize, detected: usize) {
    println!("  {name:<34} planted={planted:<8} detected={detected}");
    assert!(
        detected >= planted,
        "{name}: detector missed planted findings"
    );
}
