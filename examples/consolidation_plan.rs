//! Role consolidation: from duplicate-role findings to a verified,
//! access-preserving merge — the "role diet" itself.
//!
//! ```text
//! cargo run --release --example consolidation_plan
//! ```

use rolediet::core::consolidate::verify_preserves_access;
use rolediet::core::{DetectionConfig, MergePlan, Pipeline};
use rolediet::model::{RbacDataset, RoleId};
use rolediet::synth::profiles::small_org;

fn main() {
    // A 6-department organization with planted duplicate roles.
    let org = rolediet::synth::generate_org(small_org(11));
    let ds = RbacDataset::from_graph(org.graph.clone());
    println!(
        "before: {} roles, {} users, {} permissions",
        ds.graph().n_roles(),
        ds.graph().n_users(),
        ds.graph().n_permissions()
    );

    // Detect (similarity skipped: consolidation only uses T4 groups).
    let cfg = DetectionConfig {
        skip_similarity: true,
        ..DetectionConfig::default()
    };
    let report = Pipeline::new(cfg).run(ds.graph());
    println!(
        "found {} same-user groups, {} same-permission groups, {} standalone roles",
        report.same_user_groups.len(),
        report.same_permission_groups.len(),
        report.standalone_roles.len()
    );

    // Plan. In a real deployment an administrator reviews `plan.merges`
    // here and deletes any merge touching a legitimate corner case — the
    // paper insists these are proposals, not automatic fixes.
    let mut plan = MergePlan::from_report(&report, ds.graph().n_roles(), true);
    println!("\nproposed merges (administrator review):");
    for m in &plan.merges {
        let absorbed: Vec<String> = m
            .absorbed
            .iter()
            .map(|r| ds.role_name(*r).to_owned())
            .collect();
        println!(
            "  keep {:<6} absorb [{}] ({:?})",
            ds.role_name(m.keep),
            absorbed.join(", "),
            m.basis
        );
    }
    // Simulate the administrator rejecting the first proposal.
    if !plan.merges.is_empty() {
        let rejected = plan.merges.remove(0);
        println!(
            "\nadministrator rejected the merge keeping {}",
            ds.role_name(rejected.keep)
        );
    }

    // Apply and verify.
    let outcome = plan.apply(ds.graph());
    let violations = verify_preserves_access(ds.graph(), &outcome.graph);
    assert!(violations.is_empty(), "merge must preserve access");
    println!(
        "\nafter: {} roles ({} removed); every user's effective permissions verified unchanged",
        outcome.graph.n_roles(),
        outcome.roles_removed
    );

    // Names carry over through the dataset-level rebuild.
    let merged_ds = ds
        .rebuild_with_role_map(&outcome.role_map, outcome.graph.n_roles())
        .expect("plan validated");
    let survivors = (0..3.min(merged_ds.graph().n_roles()))
        .map(|r| merged_ds.role_name(RoleId::from_index(r)).to_owned())
        .collect::<Vec<_>>();
    println!("first surviving roles: {}", survivors.join(", "));
}
