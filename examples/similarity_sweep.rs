//! Similarity threshold sweep: how the administrator's threshold `t`
//! changes the T5 findings, and how the three strategies compare on the
//! same data.
//!
//! ```text
//! cargo run --release --example similarity_sweep
//! ```

use rolediet::cluster::recall::{groups_to_pairs, pair_stats};
use rolediet::core::strategy::{find_same_groups, find_similar_pairs};
use rolediet::core::{Parallelism, SimilarityConfig, Strategy};
use rolediet::synth::{generate_matrix, MatrixGenConfig};

fn main() {
    // A paper-shaped RUAM with planted duplicate clusters, two members of
    // each perturbed by one bit (planted Hamming-1 pairs).
    let gen = generate_matrix(MatrixGenConfig {
        perturbed_per_cluster: 2,
        ..MatrixGenConfig::paper(2_000, 1_000, 42)
    });
    let m = gen.sparse();
    let tr = m.transpose();
    println!(
        "matrix: 2000 roles x 1000 users, {} planted duplicate groups, {} planted similar pairs\n",
        gen.truth.planted_groups.len(),
        gen.truth.planted_similar_pairs.len()
    );

    // --- effect of the threshold on the custom strategy ---------------
    println!("threshold sweep (custom strategy):");
    for t in [1usize, 2, 3, 5, 8] {
        let cfg = SimilarityConfig {
            threshold: t,
            ..SimilarityConfig::default()
        };
        let start = std::time::Instant::now();
        let pairs = find_similar_pairs(&m, &tr, &Strategy::Custom, &cfg, Parallelism::Sequential);
        println!(
            "  t={t}: {:>6} pairs in {:.2?}",
            pairs.len(),
            start.elapsed()
        );
    }

    // --- method agreement on T4 ---------------------------------------
    println!("\nduplicate groups (T4) by strategy:");
    let truth = find_same_groups(&m, &Strategy::Custom, Parallelism::Sequential);
    let truth_pairs = groups_to_pairs(&truth);
    for strategy in [
        Strategy::Custom,
        Strategy::ExactDbscan,
        Strategy::hnsw_default(),
        Strategy::minhash_default(),
    ] {
        let start = std::time::Instant::now();
        let groups = find_same_groups(&m, &strategy, Parallelism::Sequential);
        let stats = pair_stats(&truth_pairs, &groups_to_pairs(&groups));
        println!(
            "  {:<14} {:>4} groups, recall={:.3}, precision={:.3}, {:.2?}",
            strategy.name(),
            groups.len(),
            stats.recall,
            stats.precision,
            start.elapsed()
        );
    }
    println!("\nexact strategies must show recall=1.000 precision=1.000;");
    println!("approximate ones trade recall for speed and converge over periodic runs.");
}
