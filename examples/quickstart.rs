//! Quickstart: build a small RBAC dataset, run every detector, read the
//! report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rolediet::core::{DetectionConfig, MergePlan, Pipeline};
use rolediet::model::{RbacDataset, RoleId};

fn main() {
    // The worked example of Figure 1 of the paper: 4 users, 5 roles,
    // 6 permissions, with one instance of every inefficiency type.
    let ds = RbacDataset::figure1_example();

    // Run the full pipeline with the default (custom co-occurrence)
    // strategy and the default similarity threshold t = 1.
    let report = Pipeline::new(DetectionConfig::default()).run(ds.graph());

    println!("=== inefficiency summary ===");
    print!("{}", report.summary_table());

    // Findings reference dense role indices; resolve them to names.
    println!("\n=== named findings ===");
    for &r in &report.userless_roles {
        println!("role {} has no users", ds.role_name(RoleId::from_index(r)));
    }
    for &r in &report.permless_roles {
        println!(
            "role {} has no permissions",
            ds.role_name(RoleId::from_index(r))
        );
    }
    for group in &report.same_user_groups {
        let names: Vec<&str> = group
            .iter()
            .map(|&r| ds.role_name(RoleId::from_index(r)))
            .collect();
        println!("identical user sets: {}", names.join(" = "));
    }
    for group in &report.same_permission_groups {
        let names: Vec<&str> = group
            .iter()
            .map(|&r| ds.role_name(RoleId::from_index(r)))
            .collect();
        println!("identical permission sets: {}", names.join(" = "));
    }

    // Plan a consolidation from the duplicate groups and verify that it
    // changes nobody's access.
    let plan = MergePlan::from_report(&report, ds.graph().n_roles(), true);
    let outcome = plan.apply(ds.graph());
    let violations =
        rolediet::core::consolidate::verify_preserves_access(ds.graph(), &outcome.graph);
    println!(
        "\nconsolidation would remove {} of {} roles (access violations: {})",
        outcome.roles_removed,
        ds.graph().n_roles(),
        violations.len()
    );
    assert!(violations.is_empty(), "consolidation must preserve access");
}
