//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` stub's [`Content`] data model, parsing the item's
//! token stream by hand (the real implementation's `syn`/`quote` stack is
//! unavailable offline). Supported shapes cover everything this workspace
//! derives: named/tuple/newtype/unit structs; enums with unit, newtype,
//! tuple and struct variants (externally tagged, as upstream); the
//! container attributes `#[serde(transparent)]` (a no-op here — newtype
//! structs are always transparent) and `#[serde(from = "T", into = "T")]`;
//! and the field attributes `#[serde(default)]` / `#[serde(default =
//! "path")]`, which make a missing map entry deserialize to
//! `Default::default()` / `path()` instead of erroring.
#![allow(clippy::all, clippy::pedantic)]
#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Container-level `#[serde(...)]` attributes.
#[derive(Default)]
struct SerdeAttrs {
    from: Option<String>,
    into: Option<String>,
}

/// How a missing map entry deserializes for one named field.
enum FieldDefault {
    /// No `#[serde(default)]`: absence is an error.
    Required,
    /// `#[serde(default)]`: substitute `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]`: substitute `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
    attrs: SerdeAttrs,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn ident_of(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = SerdeAttrs::default();

    // Outer attributes (doc comments arrive as `#[doc = "..."]`).
    while i < tokens.len() && is_punct(&tokens[i], '#') {
        if let TokenTree::Group(g) = &tokens[i + 1] {
            collect_serde_attr(&g.stream(), &mut attrs);
        }
        i += 2;
    }

    // Visibility.
    if ident_of(&tokens[i]).as_deref() == Some("pub") {
        i += 1;
        if let TokenTree::Group(g) = &tokens[i] {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }

    let keyword = ident_of(&tokens[i]).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_of(&tokens[i]).expect("expected item name");
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("the vendored serde_derive does not support generic types");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(&g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(&g.stream()))
            }
            _ => panic!("enum without a body"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };

    Input { name, kind, attrs }
}

/// Records `from`/`into` type names from a `#[serde(...)]` attribute;
/// every other attribute (docs, `transparent`, `repr`, ...) is ignored.
fn collect_serde_attr(attr_body: &TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = attr_body.clone().into_iter().collect();
    if tokens.first().and_then(ident_of).as_deref() != Some("serde") {
        return;
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        let key = ident_of(&args[i]);
        if i + 2 < args.len() && is_punct(&args[i + 1], '=') {
            if let TokenTree::Literal(lit) = &args[i + 2] {
                let value = lit.to_string().trim_matches('"').to_string();
                match key.as_deref() {
                    Some("from") => attrs.from = Some(value),
                    Some("into") => attrs.into = Some(value),
                    _ => {}
                }
                i += 3;
                continue;
            }
        }
        i += 1;
    }
}

/// Records a field-level `#[serde(default)]` / `#[serde(default = "path")]`
/// from one attribute body; every other attribute is ignored.
fn collect_field_default(attr_body: &TokenStream, default: &mut FieldDefault) {
    let tokens: Vec<TokenTree> = attr_body.clone().into_iter().collect();
    if tokens.first().and_then(ident_of).as_deref() != Some("serde") {
        return;
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        if ident_of(&args[i]).as_deref() == Some("default") {
            if i + 2 < args.len() && is_punct(&args[i + 1], '=') {
                if let TokenTree::Literal(lit) = &args[i + 2] {
                    *default = FieldDefault::Path(lit.to_string().trim_matches('"').to_string());
                    i += 3;
                    continue;
                }
            }
            *default = FieldDefault::Trait;
        }
        i += 1;
    }
}

/// Extracts field names from a named-fields body, recording any
/// `#[serde(default)]` markers and consuming each type
/// angle-bracket-aware (so `HashMap<K, V>` commas do not split fields).
fn parse_named_fields(body: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = FieldDefault::Required;
        while i < tokens.len() && is_punct(&tokens[i], '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                collect_field_default(&g.stream(), &mut default);
            }
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        if ident_of(&tokens[i]).as_deref() == Some("pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let name = ident_of(&tokens[i]).expect("expected field name");
        i += 1;
        assert!(
            is_punct(&tokens[i], ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        let mut depth = 0i32;
        while i < tokens.len() {
            if is_punct(&tokens[i], '<') {
                depth += 1;
            } else if is_punct(&tokens[i], '>') {
                depth -= 1;
            } else if is_punct(&tokens[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(body: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut segment_has_tokens = false;
    for tt in &tokens {
        if is_punct(tt, '<') {
            depth += 1;
        } else if is_punct(tt, '>') {
            depth -= 1;
        } else if is_punct(tt, ',') && depth == 0 {
            if segment_has_tokens {
                fields += 1;
            }
            segment_has_tokens = false;
            continue;
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        fields += 1;
    }
    fields
}

fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while i < tokens.len() && is_punct(&tokens[i], '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = ident_of(&tokens[i]).expect("expected variant name");
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(&g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(trait_name: &str, type_name: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic, unused_variables)]\n\
         impl serde::{trait_name} for {type_name} {{\n"
    )
}

fn generate_serialize(item: &Input) -> String {
    let name = &item.name;
    let mut out = impl_header("Serialize", name);
    out.push_str("fn to_content(&self) -> serde::Content {\n");

    if let Some(into_ty) = &item.attrs.into {
        out.push_str(&format!(
            "let __converted: {into_ty} = <{name} as ::std::clone::Clone>::clone(self).into();\n\
             serde::Serialize::to_content(&__converted)\n"
        ));
    } else {
        match &item.kind {
            Kind::UnitStruct => out.push_str("serde::Content::Null\n"),
            Kind::TupleStruct(1) => {
                out.push_str("serde::Serialize::to_content(&self.0)\n");
            }
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Serialize::to_content(&self.{i})"))
                    .collect();
                out.push_str(&format!(
                    "serde::Content::Seq(vec![{}])\n",
                    items.join(", ")
                ));
            }
            Kind::NamedStruct(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let f = &f.name;
                        format!("(String::from(\"{f}\"), serde::Serialize::to_content(&self.{f}))")
                    })
                    .collect();
                out.push_str(&format!(
                    "serde::Content::Map(vec![{}])\n",
                    entries.join(", ")
                ));
            }
            Kind::Enum(variants) => {
                out.push_str("match self {\n");
                for v in variants {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => out.push_str(&format!(
                            "{name}::{vname} => serde::Content::Str(String::from(\"{vname}\")),\n"
                        )),
                        VariantShape::Tuple(1) => out.push_str(&format!(
                            "{name}::{vname}(__f0) => serde::Content::Map(vec![(String::from(\"{vname}\"), serde::Serialize::to_content(__f0))]),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_content({b})"))
                                .collect();
                            out.push_str(&format!(
                                "{name}::{vname}({}) => serde::Content::Map(vec![(String::from(\"{vname}\"), serde::Content::Seq(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            ));
                        }
                        VariantShape::Named(fields) => {
                            let names: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = names
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            out.push_str(&format!(
                                "{name}::{vname} {{ {} }} => serde::Content::Map(vec![(String::from(\"{vname}\"), serde::Content::Map(vec![{}]))]),\n",
                                names.join(", "),
                                entries.join(", ")
                            ));
                        }
                    }
                }
                out.push_str("}\n");
            }
        }
    }
    out.push_str("}\n}\n");
    out
}

fn named_struct_body(type_path: &str, fields: &[Field], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let name = &f.name;
            match &f.default {
                FieldDefault::Required => format!(
                    "{name}: serde::Deserialize::from_content(serde::get_field({map_expr}, \"{name}\")?)?"
                ),
                FieldDefault::Trait => format!(
                    "{name}: match serde::get_opt_field({map_expr}, \"{name}\") {{\n\
                         Some(__v) => serde::Deserialize::from_content(__v)?,\n\
                         None => ::std::default::Default::default(),\n\
                     }}"
                ),
                FieldDefault::Path(path) => format!(
                    "{name}: match serde::get_opt_field({map_expr}, \"{name}\") {{\n\
                         Some(__v) => serde::Deserialize::from_content(__v)?,\n\
                         None => {path}(),\n\
                     }}"
                ),
            }
        })
        .collect();
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn generate_deserialize(item: &Input) -> String {
    let name = &item.name;
    let mut out = impl_header("Deserialize", name);
    out.push_str(
        "fn from_content(__content: &serde::Content) -> ::std::result::Result<Self, serde::Error> {\n",
    );

    if let Some(from_ty) = &item.attrs.from {
        out.push_str(&format!(
            "let __value: {from_ty} = serde::Deserialize::from_content(__content)?;\n\
             Ok(<{name} as ::std::convert::From<{from_ty}>>::from(__value))\n"
        ));
    } else {
        match &item.kind {
            Kind::UnitStruct => out.push_str(&format!("Ok({name})\n")),
            Kind::TupleStruct(1) => out.push_str(&format!(
                "Ok({name}(serde::Deserialize::from_content(__content)?))\n"
            )),
            Kind::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::from_content(&__seq[{i}])?"))
                    .collect();
                out.push_str(&format!(
                    "let __seq = __content.as_seq_slice().ok_or_else(|| serde::Error::custom(\"expected sequence for tuple struct {name}\"))?;\n\
                     if __seq.len() != {n} {{\n\
                         return Err(serde::Error::custom(\"wrong tuple length for {name}\"));\n\
                     }}\n\
                     Ok({name}({}))\n",
                    items.join(", ")
                ));
            }
            Kind::NamedStruct(fields) => {
                out.push_str(&format!(
                    "let __map = __content.as_map_slice().ok_or_else(|| serde::Error::custom(\"expected map for struct {name}\"))?;\n\
                     Ok({})\n",
                    named_struct_body(name, fields, "__map")
                ));
            }
            Kind::Enum(variants) => {
                out.push_str("match __content {\n");
                // Unit variants are externally tagged as a bare string.
                out.push_str("serde::Content::Str(__s) => match __s.as_str() {\n");
                for v in variants {
                    if matches!(v.shape, VariantShape::Unit) {
                        let vname = &v.name;
                        out.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                }
                out.push_str(&format!(
                    "__other => Err(serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n"
                ));
                // Data variants are a single-entry map.
                out.push_str(
                    "serde::Content::Map(__m) if __m.len() == 1 => {\n\
                     let (__tag, __payload) = &__m[0];\n\
                     match __tag.as_str() {\n",
                );
                for v in variants {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => {}
                        VariantShape::Tuple(1) => out.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname}(serde::Deserialize::from_content(__payload)?)),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("serde::Deserialize::from_content(&__seq[{i}])?")
                                })
                                .collect();
                            out.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 let __seq = __payload.as_seq_slice().ok_or_else(|| serde::Error::custom(\"expected sequence for variant {vname}\"))?;\n\
                                 if __seq.len() != {n} {{\n\
                                     return Err(serde::Error::custom(\"wrong tuple length for variant {vname}\"));\n\
                                 }}\n\
                                 Ok({name}::{vname}({}))\n\
                                 }},\n",
                                items.join(", ")
                            ));
                        }
                        VariantShape::Named(fields) => {
                            out.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 let __map = __payload.as_map_slice().ok_or_else(|| serde::Error::custom(\"expected map for variant {vname}\"))?;\n\
                                 Ok({})\n\
                                 }},\n",
                                named_struct_body(&format!("{name}::{vname}"), fields, "__map")
                            ));
                        }
                    }
                }
                out.push_str(&format!(
                    "__other => Err(serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }}\n\
                     }},\n\
                     _ => Err(serde::Error::custom(\"invalid representation of enum {name}\")),\n\
                     }}\n"
                ));
            }
        }
    }
    out.push_str("}\n}\n");
    out
}
