//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde's [`Content`] tree to JSON and parses JSON
//! back into it. Covers the API surface this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_writer_pretty`],
//! [`from_str`], [`from_reader`], [`Value`] (with `.get()`), [`Error`].
#![allow(clippy::all, clippy::pedantic)]
#![forbid(unsafe_code)]

use std::fmt;
use std::io::{Read, Write};

use serde::{Content, Deserialize, Serialize};

/// A parsed JSON document (alias of the serde stub's content tree).
pub type Value = Content;

/// A JSON (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Writes pretty JSON to an `io::Write`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes()).map_err(Error::new)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse(s)?;
    Ok(T::from_content(&content)?)
}

/// Parses a value from an `io::Read`.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf).map_err(Error::new)?;
    from_str(&buf)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::U128(v) => out.push_str(&v.to_string()),
        Content::I128(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => write_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_content(out, &items[i], indent, depth + 1);
        }),
        Content::Map(entries) => {
            write_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_escaped(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, &entries[i].1, indent, depth + 1);
            })
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Match serde_json: integral floats keep a trailing `.0`.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&v.to_string());
        }
    } else {
        // serde_json writes null for non-finite floats.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u128>() {
                return Ok(Content::U128(v));
            }
            if let Ok(v) = text.parse::<i128>() {
                return Ok(Content::I128(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = Content::Map(vec![
            (
                "a".to_string(),
                Content::Seq(vec![Content::U64(1), Content::Null]),
            ),
            ("b".to_string(), Content::Str("x\"y".to_string())),
        ]);
        let compact = to_string(&ContentWrapper(v.clone())).unwrap();
        assert_eq!(compact, r#"{"a":[1,null],"b":"x\"y"}"#);
        let parsed = parse(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&ContentWrapper(v.clone())).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n"));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    struct ContentWrapper(Content);
    impl Serialize for ContentWrapper {
        fn to_content(&self) -> Content {
            self.0.clone()
        }
    }

    #[test]
    fn invalid_json_errors() {
        assert!(parse("{not json").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn numbers_pick_narrowest_content() {
        assert_eq!(parse("7").unwrap(), Content::U64(7));
        assert_eq!(parse("-7").unwrap(), Content::I64(-7));
        assert_eq!(
            parse("340282366920938463463374607431768211455").unwrap(),
            Content::U128(u128::MAX)
        );
        assert_eq!(parse("1.5").unwrap(), Content::F64(1.5));
        assert_eq!(parse("1e3").unwrap(), Content::F64(1000.0));
    }

    #[test]
    fn typed_roundtrip_through_strings() {
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
    }

    #[test]
    fn float_rendering_keeps_point_zero() {
        let mut out = String::new();
        write_f64(&mut out, 2.0);
        assert_eq!(out, "2.0");
    }
}
