//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the minimal API surface it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), uniform ranges
//! ([`Rng::gen_range`]) and Bernoulli draws ([`Rng::gen_bool`]). The
//! stream differs from upstream `rand`, but every consumer in this
//! workspace only relies on determinism-given-seed and uniformity, never
//! on specific values.
#![allow(clippy::all, clippy::pedantic)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds produce equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit source every higher-level method builds on.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits to a uniform f64 in `[0, 1)` using 53 bits of
/// mantissa.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform integer in `[0, span)` by rejection sampling on the
/// widened multiply (Lemire's method, 128-bit to cover u64 spans).
fn uniform_below(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= 1 << 64);
    let threshold = (1u128 << 64) % span;
    loop {
        let m = (rng.next_u64() as u128) * span;
        if (m as u64 as u128) >= threshold {
            return m >> 64;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256** seeded via SplitMix64).
    ///
    /// Not the upstream ChaCha-based `StdRng`; this workspace only needs a
    /// fast, well-distributed, seed-deterministic stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5i64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn range_samples_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }
}
