//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal serialization framework with the same spelling as serde:
//! `Serialize`/`Deserialize` traits, `#[derive(Serialize, Deserialize)]`
//! (via the companion `serde_derive` stub), and the container attributes
//! this workspace uses (`#[serde(transparent)]`, `#[serde(from/into)]`).
//!
//! Instead of serde's visitor architecture, values convert to and from a
//! self-describing [`Content`] tree; `serde_json` renders that tree. The
//! semantics mirror the upstream behaviours the repo's tests rely on:
//! missing struct fields are deserialization errors, externally tagged
//! enums, `Duration` as `{secs, nanos}`, map keys stringified in JSON.
#![allow(clippy::all, clippy::pedantic)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the stand-in for serde's data
/// model). `serde_json::Value` is an alias of this type.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative integer (or any value written as `i64`).
    I64(i64),
    /// A non-negative integer fitting `u64`.
    U64(u64),
    /// An integer needing more than 64 bits.
    U128(u128),
    /// A negative integer needing more than 64 bits.
    I128(i128),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (JSON object).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The entries of a map, if this is one.
    pub fn as_map_slice(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The items of a sequence, if this is one.
    pub fn as_seq_slice(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value (`None` for non-maps and missing
    /// keys) — the `serde_json::Value::get` the CLI tests use.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map_slice()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// A (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

/// Types convertible into a [`Content`] tree.
pub trait Serialize {
    /// Serializes `self` into the content data model.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value, erroring on shape or range mismatches.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

/// Fetches a struct field from a serialized map, erroring when absent
/// (upstream serde rejects missing fields without `#[serde(default)]`,
/// and the model I/O tests pin that behaviour).
pub fn get_field<'a>(map: &'a [(String, Content)], name: &str) -> Result<&'a Content, Error> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// [`get_field`] for fields carrying `#[serde(default)]` / `#[serde(default
/// = "path")]`: absence is not an error, the derive substitutes the default
/// expression instead.
pub fn get_opt_field<'a>(map: &'a [(String, Content)], name: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Renders a serialized value as a JSON object key.
///
/// JSON keys are strings, so integer and boolean keys are stringified —
/// matching `serde_json`'s map-key handling.
pub fn content_to_key(content: &Content) -> Result<String, Error> {
    match content {
        Content::Str(s) => Ok(s.clone()),
        Content::Bool(b) => Ok(b.to_string()),
        Content::I64(v) => Ok(v.to_string()),
        Content::U64(v) => Ok(v.to_string()),
        Content::U128(v) => Ok(v.to_string()),
        Content::I128(v) => Ok(v.to_string()),
        _ => Err(Error::custom("map key must be a string or integer")),
    }
}

/// Reconstructs a typed map key from its JSON string form: tries the key
/// as a string first, then as an integer (the inverse of
/// [`content_to_key`]).
pub fn key_to_value<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_content(&Content::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::from_content(&Content::U64(u)) {
            return Ok(k);
        }
    }
    if let Ok(u) = key.parse::<u128>() {
        if let Ok(k) = K::from_content(&Content::U128(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::from_content(&Content::I64(i)) {
            return Ok(k);
        }
    }
    if key == "true" || key == "false" {
        if let Ok(k) = K::from_content(&Content::Bool(key == "true")) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot deserialize map key `{key}`")))
}

macro_rules! impl_small_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                #[allow(unused_comparisons)]
                if *self >= 0 {
                    Content::U64(*self as u64)
                } else {
                    Content::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let err = || Error::custom(concat!("expected ", stringify!($t)));
                match *content {
                    Content::U64(v) => <$t>::try_from(v).map_err(|_| err()),
                    Content::I64(v) => <$t>::try_from(v).map_err(|_| err()),
                    Content::U128(v) => <$t>::try_from(v).map_err(|_| err()),
                    Content::I128(v) => <$t>::try_from(v).map_err(|_| err()),
                    _ => Err(err()),
                }
            }
        }
    )*};
}

impl_small_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        match u64::try_from(*self) {
            Ok(v) => Content::U64(v),
            Err(_) => Content::U128(*self),
        }
    }
}

impl Deserialize for u128 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match *content {
            Content::U64(v) => Ok(u128::from(v)),
            Content::U128(v) => Ok(v),
            Content::I64(v) => u128::try_from(v).map_err(|_| Error::custom("expected u128")),
            Content::I128(v) => u128::try_from(v).map_err(|_| Error::custom("expected u128")),
            _ => Err(Error::custom("expected u128")),
        }
    }
}

impl Serialize for i128 {
    fn to_content(&self) -> Content {
        match i64::try_from(*self) {
            Ok(v) if v >= 0 => Content::U64(v as u64),
            Ok(v) => Content::I64(v),
            Err(_) => Content::I128(*self),
        }
    }
}

impl Deserialize for i128 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match *content {
            Content::U64(v) => Ok(i128::from(v)),
            Content::I64(v) => Ok(i128::from(v)),
            Content::U128(v) => i128::try_from(v).map_err(|_| Error::custom("expected i128")),
            Content::I128(v) => Ok(v),
            _ => Err(Error::custom("expected i128")),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match *content {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match *content {
            Content::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let s = String::from_content(content)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single character")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq_slice()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

/// Maps serialize with keys sorted by their JSON form so equal maps
/// always produce identical bytes (`HashMap` iteration order is not
/// deterministic).
fn map_to_content<'a, K, V, I>(entries: I) -> Content
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut m: Vec<(String, Content)> = entries
        .map(|(k, v)| {
            let key = content_to_key(&k.to_content())
                .expect("unsupported map key type for JSON serialization");
            (key, v.to_content())
        })
        .collect();
    m.sort_by(|a, b| a.0.cmp(&b.0));
    Content::Map(m)
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_map_slice()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((key_to_value::<K>(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_map_slice()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((key_to_value::<K>(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq_slice()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl Serialize for Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_string(), Content::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Content::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let m = content
            .as_map_slice()
            .ok_or_else(|| Error::custom("expected duration map"))?;
        let secs = u64::from_content(get_field(m, "secs")?)?;
        let nanos = u32::from_content(get_field(m, "nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let s = content
                    .as_seq_slice()
                    .ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let expected = [$($n),+].len();
                if s.len() != expected {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($t::from_content(&s[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_struct_field_is_an_error() {
        let m: &[(String, Content)] = &[];
        assert!(get_field(m, "a")
            .unwrap_err()
            .to_string()
            .contains("missing field"));
    }

    #[test]
    fn int_range_checks() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert_eq!(u8::from_content(&Content::U64(7)).unwrap(), 7);
        assert!(usize::from_content(&Content::I64(-1)).is_err());
        assert_eq!(i64::from_content(&Content::U64(9)).unwrap(), 9);
    }

    #[test]
    fn u128_roundtrips_wide_values() {
        let v = u128::MAX - 3;
        assert_eq!(u128::from_content(&v.to_content()).unwrap(), v);
    }

    #[test]
    fn hashmap_with_integer_keys_roundtrips() {
        let mut m: HashMap<u64, String> = HashMap::new();
        m.insert(12, "a".into());
        m.insert(7, "b".into());
        let c = m.to_content();
        // Keys stringified and sorted.
        let entries = c.as_map_slice().unwrap();
        assert_eq!(entries[0].0, "12");
        assert_eq!(entries[1].0, "7");
        assert_eq!(HashMap::<u64, String>::from_content(&c).unwrap(), m);
    }

    #[test]
    fn duration_shape_matches_serde() {
        let d = Duration::new(3, 450);
        let c = d.to_content();
        assert_eq!(c.get("secs"), Some(&Content::U64(3)));
        assert_eq!(c.get("nanos"), Some(&Content::U64(450)));
        assert_eq!(Duration::from_content(&c).unwrap(), d);
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(Some(5u32).to_content(), Content::U64(5));
    }
}
