//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use, sampling from a fixed-seed deterministic generator. Unlike
//! upstream proptest there is no shrinking and no failure persistence —
//! a failing case reports its assertion directly; the deterministic seed
//! makes every failure reproducible by rerunning the test.
#![allow(clippy::all, clippy::pedantic)]
#![forbid(unsafe_code)]

pub mod test_runner {
    use rand::SeedableRng;

    /// Number of random cases each `proptest!` test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases per test (default 256, overridable via `PROPTEST_CASES`).
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// The deterministic generator threaded through strategy sampling.
    pub struct TestRng {
        pub(crate) rng: rand::rngs::StdRng,
    }

    impl TestRng {
        /// A generator with a fixed seed: every run samples the same
        /// cases, so failures always reproduce.
        pub fn deterministic() -> Self {
            TestRng {
                rng: rand::rngs::StdRng::seed_from_u64(0x9e37_79b9_7f4a_7c15),
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng: &mut TestRng| self.new_value(rng)))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn new_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice between strategies (the `prop_oneof!` backend).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// A union over the given alternatives. Panics if empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union(options)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            let pick = rng.rng.gen_range(0..self.0.len());
            self.0[pick].new_value(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn new_value(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// The length specification accepted by [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// The strategy type behind [`ANY`].
    #[derive(Clone, Copy)]
    pub struct Any;

    /// A fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.rng.gen_bool(0.5)
        }
    }
}

pub mod prelude {
    pub use crate::collection::vec as prop_vec;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            let mut __case: u32 = 0;
            while __case < __config.cases {
                __case += 1;
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

/// `assert!` with optional message, named as proptest spells it.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let strat = vec(0usize..10, 3..=5);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((3..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let strat = (1usize..6).prop_flat_map(|n| vec(0usize..n, n));
        for _ in 0..50 {
            let v = strat.new_value(&mut rng);
            assert!(!v.is_empty() && v.len() < 6);
            assert!(v.iter().all(|&x| x < v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_runs(x in 0usize..10, flip in crate::bool::ANY) {
            prop_assume!(x != 3);
            prop_assert!(x < 10);
            prop_assert_ne!(x, 3);
            let _ = flip;
        }

        #[test]
        fn oneof_covers_all_arms(v in prop_oneof![0usize..1, 5usize..6]) {
            prop_assert!(v == 0 || v == 5);
        }
    }
}
