//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset of the criterion API the workspace benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::new`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Behaviour:
//! - invoked with `--bench` (a real `cargo bench` run): each benchmark is
//!   warmed up once, then timed over `sample_size` iterations, and a
//!   mean ± spread line is printed;
//! - invoked without `--bench` (`cargo test` compiles and runs bench
//!   binaries too, since they declare `harness = false`): each closure
//!   runs exactly once as a smoke test, keeping test runs fast.
#![allow(clippy::all, clippy::pedantic)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id rendered as `name/parameter`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Iterations per timed sample (1 in test mode).
    iters: u64,
    /// Measured total duration of the last [`Bencher::iter`] call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark (bench mode
    /// only; test mode always runs one iteration).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        if !self.criterion.bench_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{label}: ok (test mode, 1 iteration)");
            return;
        }
        // Warm-up pass, then `sample_size` timed samples of one
        // iteration each — enough to report a stable mean and spread.
        let mut warm = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warm);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64());
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        println!(
            "{label}: mean {:.3} ms ± {:.3} ms over {} samples",
            mean * 1e3,
            var.sqrt() * 1e3,
            samples.len()
        );
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--bench`; `cargo test` runs
        // the same binaries without it.
        Criterion {
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// Declares a benchmark group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_closure_in_test_mode() {
        let mut c = Criterion { bench_mode: false };
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("a", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_mode_times_samples() {
        let mut c = Criterion { bench_mode: true };
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("b", 7), &7usize, |b, &x| {
                b.iter(|| calls += x)
            });
        }
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4 * 7);
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("pairs", 8).to_string(), "pairs/8");
    }
}
