#!/usr/bin/env python3
"""Patch EXPERIMENTS.md with measured series from results_*.txt.

Regenerate inputs with the `repro` harness, then run this from the repo
root:

    cargo run --release -p rolediet-bench --bin repro -- fig3 > results_fig3.txt
    python3 scripts/fill_experiments.py
"""
import re
import pathlib

root = pathlib.Path(__file__).resolve().parent.parent
exp = (root / "EXPERIMENTS.md").read_text()


def parse_series(path):
    series = {}
    txt = (root / path).read_text()
    for m in re.finditer(
        r"^(\S+)\s+x=(\d+)\s+mean=\s*([0-9.]+)s std=\s*([0-9.]+)s", txt, re.M
    ):
        series.setdefault(m.group(1), {})[int(m.group(2))] = (
            float(m.group(3)),
            float(m.group(4)),
        )
    return series


def fig3_table():
    s = parse_series("results_fig3.txt")
    xs = sorted(next(iter(s.values())).keys())
    rows = ["| roles | exact-dbscan (s) | approx-hnsw (s) | custom (s) |",
            "|---|---|---|---|"]
    for x in xs:
        def cell(name, prec=3):
            if name not in s or x not in s[name]:
                return "halted"
            m, d = s[name][x]
            return f"{m:.{prec}f} ± {d:.{prec}f}" if m >= 0.01 else f"{m:.4f}"
        rows.append(
            f"| {x:,} | {cell('exact-dbscan')} | {cell('approx-hnsw')} | {cell('custom')} |"
        )
    return "\n".join(rows)


if (root / "results_fig3.txt").exists():
    exp = exp.replace("<!-- FIG3_TABLE -->", fig3_table())

for marker, path in [("<!-- REALORG_RESULTS -->", "results_realorg.txt"),
                     ("<!-- RECALL_RESULTS -->", "results_recall.txt")]:
    f = root / path
    if f.exists():
        exp = exp.replace(marker, "```\n" + f.read_text().strip() + "\n```")

(root / "EXPERIMENTS.md").write_text(exp)
print("EXPERIMENTS.md updated")
