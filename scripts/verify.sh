#!/usr/bin/env bash
# Full local verification: the tier-1 gate plus formatting and lints.
# Works fully offline — every dependency is a vendored path crate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace --release -q"
cargo test --workspace --release -q

# The PR 3 determinism proptests, run explicitly so a filtered or
# partial test invocation can never silently skip the bit-identity
# pins for the parallel grouping kernel.
echo "==> proptests: parallel grouping determinism"
cargo test --release -q -p rolediet-cluster --test properties \
    dbscan_grouping_kernel_is_bit_identical_to_sequential_expansion
cargo test --release -q -p rolediet-core --test properties \
    dbscan_pipeline_reports_identical_across_thread_counts
cargo test --release -q -p rolediet-core --test properties \
    pipeline_reports_identical_across_thread_counts

# The PR 5 engine pins, run explicitly for the same reason.
echo "==> proptests: packed bounded-distance engine"
cargo test --release -q -p rolediet-matrix --test properties \
    packed_bounded_hamming_agrees_with_row_hamming

# The PR 6 incremental-maintenance pins: the online T1-T5 state must be
# bit-identical to a batch rerun after every churn batch, at every
# tested thread count, and replay must be deterministic.
echo "==> proptests: incremental pipeline oracle"
cargo test --release -q -p rolediet-core --test properties \
    incremental_pipeline_matches_batch_oracle
cargo test --release -q -p rolediet-core --test properties \
    incremental_pipeline_replay_is_deterministic

# The PR 7 scale pins: the sharded engine must be byte-identical to the
# flat engine under tiny budgets that force multi-shard plans, and the
# stream-keyed parallel generators must be thread-count invariant.
echo "==> proptests: sharded distance plane + parallel generators"
cargo test --release -q -p rolediet-matrix --test properties \
    sharded_engine_matches_flat_engine_under_tiny_budgets
cargo test --release -q -p rolediet-synth --test parallel_properties

# The PR 8 batched-HNSW pins: the two-phase batched build must be
# bit-identical to the sequential insert oracle at every tested
# (batch, threads) pairing, both at the index level and through the
# whole pipeline report.
echo "==> proptests: batched HNSW determinism"
cargo test --release -q -p rolediet-cluster --test properties \
    hnsw_batch_build_matches_sequential_oracle
cargo test --release -q -p rolediet-core --test properties \
    hnsw_pipeline_reports_identical_across_batch_and_threads
cargo test --release -q -p rolediet-core --test properties \
    hnsw_recall_on_figure3_workload_clears_the_floor

# The PR 10 mining pins: the lazy-greedy (CELF) cover must be
# bit-identical to the eager full-rescan oracle at every tested thread
# count and candidate configuration, and candidate pools must be
# thread-count invariant.
echo "==> proptests: lazy-greedy mining oracle"
cargo test --release -q -p rolediet-mining --test properties \
    lazy_greedy_matches_eager_oracle_across_threads
cargo test --release -q -p rolediet-mining --test properties \
    candidate_pools_are_thread_count_invariant
cargo test --release -q -p rolediet-mining --test properties \
    cap_exceeding_pools_mine_without_panicking

echo "==> cargo build --workspace --benches"
cargo build --workspace --benches

# Bench smoke: a short-iteration bench_json run exercises the packed
# engine's full-pipeline path (scalar-vs-engine and sharded-vs-oracle
# equality asserts run inside) without the cost of a real measurement
# (--skip-million drops the fixed-size 1M-user stage).
echo "==> bench_json smoke (--scale 0.02 --iters 1 --skip-million)"
cargo run --release -q -p rolediet-bench --bin bench_json -- \
    --scale 0.02 --iters 1 --skip-million \
    --out "$(mktemp -t bench_smoke.XXXXXX.json)" >/dev/null

# Multi-shard smoke: a pipeline run under a 1-byte memory budget forces
# the distance plane through a maximally sharded plan; the run must
# report shards > 1 and byte-equal findings vs. the unbudgeted run
# (asserted inside the test).
echo "==> tiny-budget multi-shard smoke"
cargo test --release -q -p rolediet-core \
    memory_budget_shards_the_distance_plane_without_changing_results

# Churn smoke: replay simulated churn through the incremental pipeline;
# the subcommand asserts bit-identity against the batch rerun after
# every applied batch.
echo "==> repro churn --incremental smoke"
cargo run --release -q -p rolediet-bench --bin repro -- \
    churn --incremental --steps 200 --batch 50 --scale 0.02 >/dev/null

# Mining smoke: refine-vs-regenerate on a churned org at 2 worker
# threads; every mined cover is verified exact inside the subcommand.
echo "==> repro mining smoke (2 threads)"
cargo run --release -q -p rolediet-bench --bin repro -- \
    mining --steps 200 --scale 0.02 --threads 2 >/dev/null

# Approximate-path smoke: the full pipeline under the HNSW strategy with
# the batched parallel build (2 worker threads) on a small ing-like org,
# with the report validators on.
echo "==> repro realorg --strategy hnsw smoke"
cargo run --release -q -p rolediet-bench --bin repro -- \
    realorg --strategy hnsw --threads 2 --scale 0.02 --validate >/dev/null

# Race-audit feature: the write-span auditor is compiled into the
# parallel substrate's release path too, not just under cfg(test).
echo "==> cargo test -q -p rolediet-matrix --features audit"
cargo test -q -p rolediet-matrix --features audit

# Strict mode promotes allowlist slack/stale warnings to errors, so a
# ratchet that should have been tightened fails the gate too (fix with
# `scripts/lint.sh --fix-allowlist`). The summary line (files, fns,
# call edges, wall time) is kept for the Outcome report below.
echo "==> rolediet-lint --strict (domain lints D1-D8)"
lint_log="$(mktemp -t rolediet_lint.XXXXXX.log)"
cargo run -q -p rolediet-lint -- --strict 2>&1 | tee "$lint_log"
lint_summary="$(sed -n 's/^rolediet-lint: //p' "$lint_log" | tail -n 1)"
rm -f "$lint_log"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all checks passed"
echo "Outcome: lint ${lint_summary:-summary unavailable}"
