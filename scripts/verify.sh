#!/usr/bin/env bash
# Full local verification: the tier-1 gate plus formatting and lints.
# Works fully offline — every dependency is a vendored path crate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace --release -q"
cargo test --workspace --release -q

echo "==> cargo build --workspace --benches"
cargo build --workspace --benches

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all checks passed"
