#!/usr/bin/env bash
# Full local verification: the tier-1 gate plus formatting and lints.
# Works fully offline — every dependency is a vendored path crate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace --release -q"
cargo test --workspace --release -q

# The PR 3 determinism proptests, run explicitly so a filtered or
# partial test invocation can never silently skip the bit-identity
# pins for the parallel grouping kernel.
echo "==> proptests: parallel grouping determinism"
cargo test --release -q -p rolediet-cluster --test properties \
    dbscan_grouping_kernel_is_bit_identical_to_sequential_expansion
cargo test --release -q -p rolediet-core --test properties \
    dbscan_pipeline_reports_identical_across_thread_counts
cargo test --release -q -p rolediet-core --test properties \
    pipeline_reports_identical_across_thread_counts

echo "==> cargo build --workspace --benches"
cargo build --workspace --benches

# Race-audit feature: the write-span auditor is compiled into the
# parallel substrate's release path too, not just under cfg(test).
echo "==> cargo test -q -p rolediet-matrix --features audit"
cargo test -q -p rolediet-matrix --features audit

echo "==> rolediet-lint (domain lints D1-D5)"
cargo run -q -p rolediet-lint

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all checks passed"
