#!/usr/bin/env bash
# Run the workspace domain lints (rolediet-lint, rules D1-D5) against
# the ratcheting allowlist in crates/lint/allowlist.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q -p rolediet-lint -- "$@"
