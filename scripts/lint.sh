#!/usr/bin/env bash
# Run the workspace domain lints (rolediet-lint): per-file rules D1-D5
# plus the interprocedural rules D6-D8 (determinism taint, panic
# surface, parallel-closure captures) over the workspace call graph,
# against the ratcheting allowlist in crates/lint/allowlist.txt.
#
# Useful flags (see --help for all):
#   --strict          promote allowlist slack/stale warnings to errors
#   --explain         print the call chain under each D6/D7 finding
#   --json            machine-readable output (rule, file, fn, chain)
#   --fix-allowlist   rewrite allowlist.txt with tightened ratchets
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q -p rolediet-lint -- "$@"
