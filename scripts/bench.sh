#!/usr/bin/env bash
# Benchmark driver for the hot-path kernels PR.
#
# Runs the abl-parallel microbenchmarks (threads in {1,2,4,8} for every
# substrate stage plus the sequential baselines, including the DBSCAN
# grouping kernel vs. BFS expansion and the eps-edge dedup ablation),
# the abl-distkern microbenchmarks (packed bounded-distance engine vs
# the scalar scan, the norm-band pruning ablation, and the PR 7
# 8-word-lane vs 4-word-unroll kernel rows next to a streaming
# memory-bandwidth roofline) and then the full-scale JSON bench:
# two-pass matrix build, bucketed disjoint supplement, DBSCAN
# connected-components grouping, MinHash, the distance-precompute
# engine-vs-scalar comparison, the memory-budgeted sharded engine, the
# parallel-vs-sequential org generator, the incremental churn-apply vs.
# full-rerun comparison at the real-org scale of results_realorg.txt
# (generate_ing_like), fig2/fig3 mini-sweeps, the PR 8 batched HNSW
# build vs the sequential insert oracle plus the approximate path's
# query/recall rows, the million-user end-to-end stage (generation
# + flat/sharded distance plane + the approximate path at 1M users),
# and the PR 10 role-mining rows: parallel candidate generation and the
# lazy-greedy (CELF) cover on the real-org UPAM plus the lazy-vs-eager
# engine ratio on the largest eager-feasible organization.
# The JSON bench writes machine-readable records {stage, size, threads,
# ns, found} to BENCH_OUT — the same schema as
# BENCH_pr2.json…BENCH_pr8.json, so the perf trajectory stays
# machine-readable (recall rows store basis points in `found`).
#
# Env knobs:
#   BENCH_SCALE  org scale factor for the JSON bench (default 1.0)
#   BENCH_SEED   generator seed (default 7)
#   BENCH_ITERS  timing iterations, min-of-N (default 3)
#   BENCH_OUT    output path (default BENCH_pr10.json at the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SCALE="${BENCH_SCALE:-1.0}"
BENCH_SEED="${BENCH_SEED:-7}"
BENCH_ITERS="${BENCH_ITERS:-3}"
BENCH_OUT="${BENCH_OUT:-$PWD/BENCH_pr10.json}"

echo "==> cargo build --workspace --benches --release"
cargo build --workspace --benches --release

echo "==> cargo bench --bench ablation_parallel (abl-parallel)"
cargo bench -p rolediet-bench --bench ablation_parallel

echo "==> cargo bench --bench ablation_distkern (abl-distkern)"
cargo bench -p rolediet-bench --bench ablation_distkern

echo "==> bench_json --scale $BENCH_SCALE --seed $BENCH_SEED --iters $BENCH_ITERS --out $BENCH_OUT"
cargo run --release -p rolediet-bench --bin bench_json -- \
    --scale "$BENCH_SCALE" --seed "$BENCH_SEED" --iters "$BENCH_ITERS" --out "$BENCH_OUT"

echo "bench: wrote $BENCH_OUT"
